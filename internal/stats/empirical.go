package stats

import (
	"fmt"
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function built from a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF copies and sorts the sample. It panics on an empty sample.
func NewECDF(sample []float64) *ECDF {
	if len(sample) == 0 {
		panic("stats: NewECDF on empty sample")
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// NewECDFSorted builds an ECDF over a sample that is already sorted
// ascending, taking ownership of the slice (no copy, no re-sort). Callers
// that evaluate many quantiles on one result sort once and share the
// sorted sample between the ECDF and the frequency table instead of
// re-sorting per call. It panics on an empty or unsorted sample.
func NewECDFSorted(sorted []float64) *ECDF {
	if len(sorted) == 0 {
		panic("stats: NewECDFSorted on empty sample")
	}
	if !sort.Float64sAreSorted(sorted) {
		panic("stats: NewECDFSorted on unsorted sample")
	}
	return &ECDF{sorted: sorted}
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns the fraction of sample points <= x.
func (e *ECDF) At(x float64) float64 {
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the empirical q-quantile using the order statistic
// X_(ceil(q*n)) — the estimator the paper uses for the elite threshold
// (Algorithm 3 line 19 picks the (p_i |S|)-largest element).
func (e *ECDF) Quantile(q float64) float64 {
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	i := int(math.Ceil(q*float64(len(e.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return e.sorted[i]
}

// Min returns the smallest sample point (the paper's SELECT MIN(totalLoss)
// FROM FTABLE tail-boundary estimate).
func (e *ECDF) Min() float64 { return e.sorted[0] }

// Max returns the largest sample point.
func (e *ECDF) Max() float64 { return e.sorted[len(e.sorted)-1] }

// Points returns (x, F(x)) pairs for plotting, one per sorted sample value.
func (e *ECDF) Points() (xs, fs []float64) {
	xs = append([]float64(nil), e.sorted...)
	fs = make([]float64, len(xs))
	for i := range xs {
		fs[i] = float64(i+1) / float64(len(xs))
	}
	return xs, fs
}

// KSDistance returns the Kolmogorov–Smirnov statistic
// sup_x |F_n(x) - F(x)| against the reference CDF F.
func (e *ECDF) KSDistance(cdf func(float64) float64) float64 {
	n := float64(len(e.sorted))
	d := 0.0
	for i, x := range e.sorted {
		f := cdf(x)
		lo := math.Abs(f - float64(i)/n)
		hi := math.Abs(float64(i+1)/n - f)
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return d
}

// CheckFinite reports the first non-finite element of a sample as a
// descriptive error, or nil when every element is finite. NaN query
// results would otherwise silently sort to the front of an ECDF or
// FrequencyTable (sort.Float64s places NaN first) and corrupt Quantile,
// Min, and tail-boundary estimates; callers building result
// distributions reject such samples up front.
func CheckFinite(sample []float64) error {
	for i, x := range sample {
		if math.IsNaN(x) {
			return fmt.Errorf("stats: sample %d of %d is NaN", i, len(sample))
		}
		if math.IsInf(x, 0) {
			return fmt.Errorf("stats: sample %d of %d is %g", i, len(sample), x)
		}
	}
	return nil
}

// Summary holds moment statistics of a sample.
type Summary struct {
	N              int
	Mean, Var, Std float64
	Min, Max       float64
}

// Summarize computes summary statistics (sample variance with n-1 divisor).
func Summarize(sample []float64) Summary {
	s := Summary{N: len(sample)}
	if s.N == 0 {
		s.Mean, s.Var, s.Std = math.NaN(), math.NaN(), math.NaN()
		s.Min, s.Max = math.NaN(), math.NaN()
		return s
	}
	s.Min, s.Max = sample[0], sample[0]
	sum := 0.0
	for _, x := range sample {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range sample {
			d := x - s.Mean
			ss += d * d
		}
		s.Var = ss / float64(s.N-1)
		s.Std = math.Sqrt(s.Var)
	}
	return s
}

// ExpectedShortfall returns the mean of the sample points, which — when
// the sample is a set of tail samples — estimates E[X | X >= quantile],
// the paper's SELECT SUM(totalLoss * FRAC) FROM FTABLE query.
func ExpectedShortfall(tailSample []float64) float64 {
	return ConditionalMean(tailSample, math.Inf(-1), false)
}

// ConditionalMean returns the mean of the sample points at or beyond the
// threshold: E[X | X >= t] for the upper tail, E[X | X <= t] with lower
// set — the expected-shortfall (CVaR) estimator when t is a quantile of
// the sample. NaN when no point qualifies.
func ConditionalMean(sample []float64, threshold float64, lower bool) float64 {
	sum, n := 0.0, 0
	for _, x := range sample {
		if (!lower && x >= threshold) || (lower && x <= threshold) {
			sum += x
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// FrequencyTable is the FTABLE(value, FRAC) relation from the paper:
// distinct observed query results with the fraction of Monte Carlo samples
// in which each was observed.
type FrequencyTable struct {
	Values []float64
	Fracs  []float64
}

// NewFrequencyTable builds the table from raw Monte Carlo samples.
func NewFrequencyTable(samples []float64) *FrequencyTable {
	if len(samples) == 0 {
		return &FrequencyTable{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return NewFrequencyTableSorted(s)
}

// NewFrequencyTableSorted builds the table from an already-sorted sample
// without copying or re-sorting it (the slice is only read). It panics on
// an unsorted sample; an empty one yields an empty table.
func NewFrequencyTableSorted(s []float64) *FrequencyTable {
	if len(s) == 0 {
		return &FrequencyTable{}
	}
	if !sort.Float64sAreSorted(s) {
		panic("stats: NewFrequencyTableSorted on unsorted sample")
	}
	ft := &FrequencyTable{}
	n := float64(len(s))
	i := 0
	for i < len(s) {
		j := i
		for j < len(s) && s[j] == s[i] {
			j++
		}
		ft.Values = append(ft.Values, s[i])
		ft.Fracs = append(ft.Fracs, float64(j-i)/n)
		i = j
	}
	return ft
}

// Len returns the number of distinct values.
func (ft *FrequencyTable) Len() int { return len(ft.Values) }

// Min returns the smallest distinct value (tail-boundary estimate).
func (ft *FrequencyTable) Min() float64 {
	if len(ft.Values) == 0 {
		return math.NaN()
	}
	return ft.Values[0]
}

// WeightedSum returns sum(value * frac): the expected value of the
// (conditioned) query-result distribution.
func (ft *FrequencyTable) WeightedSum() float64 {
	s := 0.0
	for i, v := range ft.Values {
		s += v * ft.Fracs[i]
	}
	return s
}

// String renders the first few rows for debugging.
func (ft *FrequencyTable) String() string {
	n := ft.Len()
	if n == 0 {
		return "FTABLE(empty)"
	}
	return fmt.Sprintf("FTABLE(%d distinct, min=%g, E=%g)", n, ft.Min(), ft.WeightedSum())
}

// OrderStatistic returns the k-th smallest element (1-based) of the sample
// without fully sorting, using quickselect. It panics if k is out of range.
func OrderStatistic(sample []float64, k int) float64 {
	if k < 1 || k > len(sample) {
		panic(fmt.Sprintf("stats: order statistic %d of %d", k, len(sample)))
	}
	s := append([]float64(nil), sample...)
	lo, hi := 0, len(s)-1
	target := k - 1
	// Deterministic median-of-three quickselect; inputs here are random
	// Monte Carlo outputs, so adversarial patterns are not a concern.
	for lo < hi {
		mid := lo + (hi-lo)/2
		if s[mid] < s[lo] {
			s[mid], s[lo] = s[lo], s[mid]
		}
		if s[hi] < s[lo] {
			s[hi], s[lo] = s[lo], s[hi]
		}
		if s[hi] < s[mid] {
			s[hi], s[mid] = s[mid], s[hi]
		}
		pivot := s[mid]
		i, j := lo, hi
		for i <= j {
			for s[i] < pivot {
				i++
			}
			for s[j] > pivot {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		switch {
		case target <= j:
			hi = j
		case target >= i:
			lo = i
		default:
			return s[target]
		}
	}
	return s[target]
}

// TopK returns the k largest elements of sample in ascending order.
func TopK(sample []float64, k int) []float64 {
	if k <= 0 {
		return nil
	}
	if k >= len(sample) {
		out := append([]float64(nil), sample...)
		sort.Float64s(out)
		return out
	}
	thresh := OrderStatistic(sample, len(sample)-k+1)
	out := make([]float64, 0, k)
	// Collect strictly greater first, then fill with the threshold value to
	// handle ties deterministically.
	for _, x := range sample {
		if x > thresh {
			out = append(out, x)
		}
	}
	for _, x := range sample {
		if len(out) == k {
			break
		}
		if x == thresh {
			out = append(out, x)
		}
	}
	sort.Float64s(out)
	return out
}

// QuantileCI returns a distribution-free confidence interval for the
// q-quantile from an i.i.d. sample, using the binomial order-statistic
// bounds [David & Nagaraja; Serfling Sec. 2.6]: the interval between the
// order statistics whose ranks are the normal-approximation bounds of
// Binomial(n, q). The naive-MCDB baseline reports these intervals.
//
// Small-sample behavior is pinned rather than left to the approximation:
// every order-statistic rank is clamped into [1, n] on both sides (q at or
// beyond 0/1, or a tiny q*n, would otherwise produce ranks outside the
// sample), and when the sample is too small for ANY pair of order
// statistics to achieve the requested coverage — the widest interval
// [X_(1), X_(n)] covers the q-quantile with probability 1 - q^n - (1-q)^n,
// which falls below conf for small n — that widest interval is returned as
// the documented fallback. Callers needing the nominal coverage must grow
// the sample; the fallback is the most honest interval the data supports.
func QuantileCI(sample []float64, q, conf float64) (lo, hi float64) {
	n := len(sample)
	if n == 0 {
		return math.NaN(), math.NaN()
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Widest-interval fallback: coverage of [X_(1), X_(n)] is
	// 1 - q^n - (1-q)^n; when even that misses conf, narrower intervals
	// cannot help.
	if 1-math.Pow(q, float64(n))-math.Pow(1-q, float64(n)) < conf {
		return s[0], s[n-1]
	}
	z := StdNormalQuantile(1 - (1-conf)/2)
	mean := q * float64(n)
	sd := math.Sqrt(float64(n) * q * (1 - q))
	loRank := clampRank(int(math.Floor(mean-z*sd)), n)
	hiRank := clampRank(int(math.Ceil(mean+z*sd)), n)
	return s[loRank-1], s[hiRank-1]
}

// clampRank clamps a 1-based order-statistic rank into [1, n].
func clampRank(r, n int) int {
	if r < 1 {
		return 1
	}
	if r > n {
		return n
	}
	return r
}
