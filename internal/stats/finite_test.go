package stats

import (
	"math"
	"strings"
	"testing"
)

func TestCheckFinite(t *testing.T) {
	if err := CheckFinite([]float64{1, -2.5, 0, 1e300}); err != nil {
		t.Fatalf("finite sample rejected: %v", err)
	}
	if err := CheckFinite(nil); err != nil {
		t.Fatalf("empty sample rejected: %v", err)
	}
	err := CheckFinite([]float64{1, math.NaN(), 3})
	if err == nil {
		t.Fatal("NaN not detected")
	}
	if !strings.Contains(err.Error(), "NaN") || !strings.Contains(err.Error(), "1 of 3") {
		t.Fatalf("NaN error not descriptive: %v", err)
	}
	err = CheckFinite([]float64{math.Inf(-1)})
	if err == nil {
		t.Fatal("-Inf not detected")
	}
	if !strings.Contains(err.Error(), "-Inf") {
		t.Fatalf("Inf error not descriptive: %v", err)
	}
}

// TestNaNPoisonsECDFWithoutCheck documents the failure mode CheckFinite
// guards against: NaN sorts to the front, so Min and low quantiles come
// back NaN silently.
func TestNaNPoisonsECDFWithoutCheck(t *testing.T) {
	e := NewECDF([]float64{5, math.NaN(), 7})
	if !math.IsNaN(e.Min()) {
		t.Skip("sort placed NaN elsewhere; nothing to document")
	}
	// This silent NaN is exactly why result distributions must be checked
	// before construction.
	if !math.IsNaN(e.Quantile(0.01)) {
		t.Fatalf("expected poisoned quantile, got %g", e.Quantile(0.01))
	}
}
