// Package stats provides the statistical machinery MCDB-R needs around the
// sampler: normal/beta analytic math for ground-truth validation, empirical
// CDFs and quantiles, frequency tables (the paper's FREQUENCYTABLE output),
// and risk measures such as expected shortfall.
package stats

import "math"

// NormalCDF returns P(N(mu, sigma^2) <= x).
func NormalCDF(x, mu, sigma float64) float64 {
	return 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
}

// StdNormalCDF returns P(Z <= z) for standard normal Z.
func StdNormalCDF(z float64) float64 { return NormalCDF(z, 0, 1) }

// StdNormalQuantile returns the inverse standard normal CDF using the
// Wichura AS241 (PPND16) algorithm, accurate to ~1e-16 over (0,1).
func StdNormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		case p == 1:
			return math.Inf(1)
		default:
			return math.NaN()
		}
	}
	q := p - 0.5
	if math.Abs(q) <= 0.425 {
		r := 0.180625 - q*q
		num := ((((((2.5090809287301226727e3*r+3.3430575583588128105e4)*r+6.7265770927008700853e4)*r+
			4.5921953931549871457e4)*r+1.3731693765509461125e4)*r+1.9715909503065514427e3)*r+
			1.3314166789178437745e2)*r + 3.3871328727963666080e0
		den := ((((((5.2264952788528545610e3*r+2.8729085735721942674e4)*r+3.9307895800092710610e4)*r+
			2.1213794301586595867e4)*r+5.3941960214247511077e3)*r+6.8718700749205790830e2)*r+
			4.2313330701600911252e1)*r + 1.0
		return q * num / den
	}
	r := p
	if q > 0 {
		r = 1 - p
	}
	r = math.Sqrt(-math.Log(r))
	var x float64
	if r <= 5 {
		r -= 1.6
		num := ((((((7.74545014278341407640e-4*r+2.27238449892691845833e-2)*r+2.41780725177450611770e-1)*r+
			1.27045825245236838258e0)*r+3.64784832476320460504e0)*r+5.76949722146069140550e0)*r+
			4.63033784615654529590e0)*r + 1.42343711074968357734e0
		den := ((((((1.05075007164441684324e-9*r+5.47593808499534494600e-4)*r+1.51986665636164571966e-2)*r+
			1.48103976427480074590e-1)*r+6.89767334985100004550e-1)*r+1.67638483018380384940e0)*r+
			2.05319162663775882187e0)*r + 1.0
		x = num / den
	} else {
		r -= 5
		num := ((((((2.01033439929228813265e-7*r+2.71155556874348757815e-5)*r+1.24266094738807843860e-3)*r+
			2.65321895265761230930e-2)*r+2.96560571828504891230e-1)*r+1.78482653991729133580e0)*r+
			5.46378491116411436990e0)*r + 6.65790464350110377720e0
		den := ((((((2.04426310338993978564e-15*r+1.42151175831644588870e-7)*r+1.84631831751005468180e-5)*r+
			7.86869131145613259100e-4)*r+1.48753612908506148525e-2)*r+1.36929880922735805310e-1)*r+
			5.99832206555887937690e-1)*r + 1.0
		x = num / den
	}
	if q < 0 {
		return -x
	}
	return x
}

// NormalQuantile returns the p-quantile of N(mu, sigma^2).
func NormalQuantile(p, mu, sigma float64) float64 {
	return mu + sigma*StdNormalQuantile(p)
}

// NormalExpectedShortfall returns E[X | X >= q] for X ~ N(mu, sigma^2),
// where q is the (1-p) quantile, i.e. P(X >= q) = p. This is the analytic
// counterpart of the paper's "expected shortfall" FREQUENCYTABLE query.
func NormalExpectedShortfall(p, mu, sigma float64) float64 {
	z := StdNormalQuantile(1 - p)
	phi := math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
	return mu + sigma*phi/p
}

// LognormalCDF returns P(Lognormal(mu, sigma) <= x).
func LognormalCDF(x, mu, sigma float64) float64 {
	if x <= 0 {
		return 0
	}
	return StdNormalCDF((math.Log(x) - mu) / sigma)
}

// BetaMean returns the mean a/(a+b) of a Beta(a, b) distribution.
func BetaMean(a, b float64) float64 { return a / (a + b) }

// BetaVar returns the variance of a Beta(a, b) distribution.
func BetaVar(a, b float64) float64 {
	s := a + b
	return a * b / (s * s * (s + 1))
}

// BetaMoment returns E[X^k] for X ~ Beta(a,b):
// prod_{j=0..k-1} (a+j)/(a+b+j).
func BetaMoment(a, b float64, k int) float64 {
	m := 1.0
	for j := 0; j < k; j++ {
		m *= (a + float64(j)) / (a + b + float64(j))
	}
	return m
}
