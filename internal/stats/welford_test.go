package stats

import (
	"math"
	"testing"
)

func TestWelfordMatchesSummarize(t *testing.T) {
	sample := []float64{3.5, -1.25, 0, 7.75, 2.5, 2.5, -9, 4.125}
	var w Welford
	w.AddAll(sample)
	s := Summarize(sample)
	if w.N() != int64(s.N) {
		t.Fatalf("N = %d, want %d", w.N(), s.N)
	}
	if math.Abs(w.Mean()-s.Mean) > 1e-12 {
		t.Errorf("Mean = %g, want %g", w.Mean(), s.Mean)
	}
	if math.Abs(w.Var()-s.Var) > 1e-12 {
		t.Errorf("Var = %g, want %g", w.Var(), s.Var)
	}
	if math.Abs(w.Std()-s.Std) > 1e-12 {
		t.Errorf("Std = %g, want %g", w.Std(), s.Std)
	}
}

func TestWelfordMerge(t *testing.T) {
	sample := []float64{1, 2, 3, 4, 5, 6, 7, 100, -3, 0.5}
	for _, split := range []int{0, 1, 5, 9, 10} {
		var a, b, whole Welford
		a.AddAll(sample[:split])
		b.AddAll(sample[split:])
		whole.AddAll(sample)
		a.Merge(b)
		if a.N() != whole.N() {
			t.Fatalf("split %d: N = %d, want %d", split, a.N(), whole.N())
		}
		if math.Abs(a.Mean()-whole.Mean()) > 1e-12 {
			t.Errorf("split %d: Mean = %g, want %g", split, a.Mean(), whole.Mean())
		}
		if math.Abs(a.Var()-whole.Var()) > 1e-9 {
			t.Errorf("split %d: Var = %g, want %g", split, a.Var(), whole.Var())
		}
	}
}

func TestWelfordEmptyAndDegenerate(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.Var()) {
		t.Errorf("empty accumulator: Mean=%g Var=%g, want NaN", w.Mean(), w.Var())
	}
	if hw := w.HalfWidth(0.95); !math.IsInf(hw, 1) {
		t.Errorf("empty HalfWidth = %g, want +Inf", hw)
	}
	w.Add(4)
	if hw := w.HalfWidth(0.95); !math.IsInf(hw, 1) {
		t.Errorf("n=1 HalfWidth = %g, want +Inf (no variance estimate)", hw)
	}
	// Constant sample: zero half-width, zero relative half-width even at
	// mean zero.
	var c Welford
	c.AddAll([]float64{0, 0, 0})
	if hw := c.HalfWidth(0.95); hw != 0 {
		t.Errorf("constant-zero HalfWidth = %g, want 0", hw)
	}
	if r := c.RelHalfWidth(0.95); r != 0 {
		t.Errorf("constant-zero RelHalfWidth = %g, want 0", r)
	}
	// Nonzero spread around mean zero: relative error undefined -> +Inf.
	var z Welford
	z.AddAll([]float64{-1, 1})
	if r := z.RelHalfWidth(0.95); !math.IsInf(r, 1) {
		t.Errorf("zero-mean RelHalfWidth = %g, want +Inf", r)
	}
}

func TestWelfordHalfWidthShrinks(t *testing.T) {
	// Deterministic pseudo-sample; half-width must shrink roughly as
	// 1/sqrt(n) as observations accumulate.
	var w Welford
	x := 0.5
	add := func(k int) {
		for i := 0; i < k; i++ {
			x = math.Mod(x*997.13+3.7, 10)
			w.Add(x)
		}
	}
	add(32)
	h32 := w.HalfWidth(0.95)
	add(96 - 32)
	h96 := w.HalfWidth(0.95)
	add(960 - 96)
	h960 := w.HalfWidth(0.95)
	if !(h96 < h32 && h960 < h96) {
		t.Errorf("half-widths not shrinking: %g, %g, %g", h32, h96, h960)
	}
}

// TestQuantileCISmallSamples pins the clamped-rank and widest-interval
// fallback behavior for samples too small to support the requested
// confidence, including the q-at-the-boundary cases that used to index
// outside the sorted sample.
func TestQuantileCISmallSamples(t *testing.T) {
	cases := []struct {
		name    string
		sample  []float64
		q, conf float64
		wantLo  float64
		wantHi  float64
	}{
		{"n=1 median", []float64{7}, 0.5, 0.95, 7, 7},
		{"n=1 q near 0", []float64{7}, 0.001, 0.95, 7, 7},
		{"n=1 q near 1", []float64{7}, 0.999, 0.95, 7, 7},
		{"n=2 median (fallback: widest)", []float64{3, 9}, 0.5, 0.95, 3, 9},
		{"n=2 q=0", []float64{3, 9}, 0, 0.95, 3, 9},
		{"n=2 q=1", []float64{3, 9}, 1, 0.95, 3, 9},
		{"n=3 q tiny", []float64{1, 2, 3}, 1e-9, 0.9, 1, 3},
		{"n=3 q huge", []float64{1, 2, 3}, 1 - 1e-9, 0.9, 1, 3},
		{"q below 0 clamps", []float64{1, 2, 3}, -0.5, 0.9, 1, 3},
		{"q above 1 clamps", []float64{1, 2, 3}, 1.5, 0.9, 1, 3},
	}
	for _, tc := range cases {
		lo, hi := QuantileCI(tc.sample, tc.q, tc.conf)
		if lo != tc.wantLo || hi != tc.wantHi {
			t.Errorf("%s: QuantileCI = [%g, %g], want [%g, %g]", tc.name, lo, hi, tc.wantLo, tc.wantHi)
		}
	}
}

func TestQuantileCILargeSampleNarrows(t *testing.T) {
	// With a large sample the binomial bounds must give a proper
	// sub-interval, not the widest fallback.
	n := 1000
	s := make([]float64, n)
	for i := range s {
		s[i] = float64(i)
	}
	lo, hi := QuantileCI(s, 0.5, 0.95)
	if lo <= s[0] || hi >= s[n-1] {
		t.Errorf("median CI [%g, %g] should be interior to [%g, %g]", lo, hi, s[0], s[n-1])
	}
	if !(lo < 500 && 500 < hi) {
		t.Errorf("median CI [%g, %g] should cover the median 500", lo, hi)
	}
	// Empty sample stays NaN.
	nanLo, nanHi := QuantileCI(nil, 0.5, 0.95)
	if !math.IsNaN(nanLo) || !math.IsNaN(nanHi) {
		t.Errorf("empty sample: [%g, %g], want NaNs", nanLo, nanHi)
	}
}
