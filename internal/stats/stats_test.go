package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestStdNormalQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{1e-6, 1e-4, 0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 0.9999, 1 - 1e-6} {
		z := StdNormalQuantile(p)
		back := StdNormalCDF(z)
		if math.Abs(back-p) > 1e-12 {
			t.Errorf("CDF(Quantile(%g)) = %g", p, back)
		}
	}
}

func TestStdNormalQuantileKnownValues(t *testing.T) {
	cases := map[float64]float64{
		0.5:    0,
		0.975:  1.959963984540054,
		0.999:  3.090232306167813,
		0.9999: 3.719016485455709,
	}
	for p, want := range cases {
		if got := StdNormalQuantile(p); math.Abs(got-want) > 1e-9 {
			t.Errorf("Quantile(%g) = %.12f, want %.12f", p, got, want)
		}
	}
	if !math.IsInf(StdNormalQuantile(0), -1) || !math.IsInf(StdNormalQuantile(1), 1) {
		t.Error("quantile at 0/1 must be ±Inf")
	}
	if !math.IsNaN(StdNormalQuantile(-0.1)) {
		t.Error("quantile outside (0,1) must be NaN")
	}
}

func TestNormalQuantileScaling(t *testing.T) {
	got := NormalQuantile(0.999, 10e6, 1e6)
	want := 10e6 + 1e6*3.090232306167813
	if math.Abs(got-want) > 1 {
		t.Errorf("NormalQuantile = %g, want %g", got, want)
	}
}

func TestNormalExpectedShortfall(t *testing.T) {
	// For standard normal at p=0.01: ES = phi(z)/p with z = q(0.99) ≈ 2.326;
	// known value ≈ 2.6652.
	got := NormalExpectedShortfall(0.01, 0, 1)
	if math.Abs(got-2.6652) > 0.001 {
		t.Errorf("ES(0.01) = %g, want ≈2.6652", got)
	}
	// ES must exceed the quantile.
	q := NormalQuantile(0.99, 5, 2)
	es := NormalExpectedShortfall(0.01, 5, 2)
	if es <= q {
		t.Errorf("ES %g must exceed VaR %g", es, q)
	}
}

func TestLognormalCDF(t *testing.T) {
	if LognormalCDF(-1, 0, 1) != 0 || LognormalCDF(0, 0, 1) != 0 {
		t.Error("lognormal CDF must be 0 for x<=0")
	}
	if got := LognormalCDF(1, 0, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("LognormalCDF(1;0,1) = %g, want 0.5", got)
	}
}

func TestBetaMoments(t *testing.T) {
	a, b := 3.0, 5.0
	if got := BetaMoment(a, b, 1); math.Abs(got-BetaMean(a, b)) > 1e-15 {
		t.Errorf("first moment %g vs mean %g", got, BetaMean(a, b))
	}
	m2 := BetaMoment(a, b, 2)
	if got := m2 - BetaMean(a, b)*BetaMean(a, b); math.Abs(got-BetaVar(a, b)) > 1e-15 {
		t.Errorf("variance from moments %g vs BetaVar %g", got, BetaVar(a, b))
	}
	if BetaMoment(a, b, 0) != 1 {
		t.Error("zeroth moment must be 1")
	}
}

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{3, 1, 2, 2})
	if e.N() != 4 || e.Min() != 1 || e.Max() != 3 {
		t.Fatalf("N/Min/Max wrong: %d %g %g", e.N(), e.Min(), e.Max())
	}
	cases := map[float64]float64{0: 0, 1: 0.25, 1.5: 0.25, 2: 0.75, 2.5: 0.75, 3: 1, 4: 1}
	for x, want := range cases {
		if got := e.At(x); got != want {
			t.Errorf("At(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestECDFQuantileMatchesOrderStatistic(t *testing.T) {
	f := func(raw []float64, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) {
				return true
			}
		}
		q := float64(qRaw%99+1) / 100
		e := NewECDF(raw)
		want := OrderStatistic(raw, int(math.Ceil(q*float64(len(raw)))))
		return e.Quantile(q) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestECDFMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sample := make([]float64, 500)
	for i := range sample {
		sample[i] = rng.NormFloat64()
	}
	e := NewECDF(sample)
	prev := -1.0
	for x := -4.0; x <= 4.0; x += 0.05 {
		f := e.At(x)
		if f < prev {
			t.Fatalf("ECDF not monotone at %g", x)
		}
		prev = f
	}
}

func TestKSDistanceAgainstTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sample := make([]float64, 2000)
	for i := range sample {
		sample[i] = rng.NormFloat64()
	}
	e := NewECDF(sample)
	d := e.KSDistance(func(x float64) float64 { return StdNormalCDF(x) })
	// For n=2000 the 99.9% KS critical value is ~1.95/sqrt(n) ≈ 0.0436.
	if d > 0.0436 {
		t.Fatalf("KS distance %g too large for a true-normal sample", d)
	}
	// A wrong reference should give a big distance.
	d2 := e.KSDistance(func(x float64) float64 { return NormalCDF(x, 2, 1) })
	if d2 < 0.5 {
		t.Fatalf("KS distance vs shifted normal %g, want large", d2)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if math.Abs(s.Var-5.0/3.0) > 1e-12 {
		t.Fatalf("Var = %g, want 5/3", s.Var)
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Mean) {
		t.Fatal("empty summary must be NaN-filled")
	}
}

func TestFrequencyTable(t *testing.T) {
	ft := NewFrequencyTable([]float64{5, 3, 5, 3, 3, 8})
	if ft.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ft.Len())
	}
	if ft.Min() != 3 {
		t.Fatalf("Min = %g", ft.Min())
	}
	wantE := (3*3.0 + 2*5.0 + 8.0) / 6
	if math.Abs(ft.WeightedSum()-wantE) > 1e-12 {
		t.Fatalf("WeightedSum = %g, want %g", ft.WeightedSum(), wantE)
	}
	sumFrac := 0.0
	for _, f := range ft.Fracs {
		sumFrac += f
	}
	if math.Abs(sumFrac-1) > 1e-12 {
		t.Fatalf("fracs sum to %g", sumFrac)
	}
	if math.IsNaN(ft.WeightedSum()) {
		t.Fatal("non-empty table should not be NaN")
	}
	if !math.IsNaN(NewFrequencyTable(nil).Min()) {
		t.Fatal("empty table Min must be NaN")
	}
}

func TestExpectedShortfallMatchesFrequencyTable(t *testing.T) {
	sample := []float64{10, 12, 12, 15}
	es := ExpectedShortfall(sample)
	ft := NewFrequencyTable(sample)
	if math.Abs(es-ft.WeightedSum()) > 1e-12 {
		t.Fatalf("ES %g != weighted sum %g", es, ft.WeightedSum())
	}
}

func TestOrderStatisticAgainstSort(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) {
				return true
			}
		}
		sorted := append([]float64(nil), raw...)
		sort.Float64s(sorted)
		for k := 1; k <= len(raw); k++ {
			if OrderStatistic(raw, k) != sorted[k-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOrderStatisticPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OrderStatistic([]float64{1}, 2)
}

func TestTopK(t *testing.T) {
	sample := []float64{5, 1, 9, 3, 9, 7}
	got := TopK(sample, 3)
	want := []float64{7, 9, 9}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("TopK = %v, want %v", got, want)
	}
	if got := TopK(sample, 10); len(got) != 6 {
		t.Fatalf("TopK(k>n) = %v", got)
	}
	if TopK(sample, 0) != nil {
		t.Fatal("TopK(0) must be nil")
	}
}

func TestTopKProperty(t *testing.T) {
	f := func(raw []float64, kRaw uint8) bool {
		for _, v := range raw {
			if math.IsNaN(v) {
				return true
			}
		}
		if len(raw) == 0 {
			return true
		}
		k := int(kRaw)%len(raw) + 1
		got := TopK(raw, k)
		sorted := append([]float64(nil), raw...)
		sort.Float64s(sorted)
		want := sorted[len(sorted)-k:]
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuantileCICoverage(t *testing.T) {
	// Repeat: draw standard-normal samples, build a 90% CI for the 0.9
	// quantile, count coverage of the true quantile.
	trueQ := StdNormalQuantile(0.9)
	rng := rand.New(rand.NewSource(77))
	covered := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		sample := make([]float64, 400)
		for j := range sample {
			sample[j] = rng.NormFloat64()
		}
		lo, hi := QuantileCI(sample, 0.9, 0.9)
		if lo > hi {
			t.Fatal("CI inverted")
		}
		if lo <= trueQ && trueQ <= hi {
			covered++
		}
	}
	cov := float64(covered) / trials
	if cov < 0.84 || cov > 0.97 {
		t.Fatalf("coverage = %g, want ≈ 0.90", cov)
	}
	if lo, hi := QuantileCI(nil, 0.5, 0.9); !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Fatal("empty sample must give NaN CI")
	}
}
