// Package server exposes an mcdbr.Engine as a concurrent HTTP JSON query
// service — the serving layer on top of the thread-safe engine and the
// prepared-query plan cache:
//
//	POST /query    {"sql": "...", "seed": 7, "samples": 100, "workers": 2}
//	POST /explain  {"sql": "..."}
//	GET  /tables
//	GET  /healthz
//
// Query execution sits behind an admission controller (internal/admit):
// a bounded priority queue in front of a fixed pool of execution slots.
// Requests beyond MaxQueue are shed immediately with 429 + Retry-After;
// queued requests that outlive the queue-wait budget get 429 too; a
// draining server answers 503. Admitted queries run under per-request
// resource budgets — a wall-clock deadline, a sample budget, and a memory
// budget — each capped by server options, and adaptive queries whose
// deadline fires mid-run return their partial estimate with
// "degraded": true instead of an error (DESIGN.md §12). SELECT statements
// are routed through Engine.Prepare so repeated statements hit the LRU
// plan cache, and Serve shuts down gracefully on context cancellation.
// Engine-level panic containment means a malformed query returns a JSON
// error instead of killing the process.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"repro/internal/admit"
	"repro/internal/sqlish"
	"repro/mcdbr"
)

// Options configures a Server.
type Options struct {
	// MaxConcurrent bounds simultaneously executing queries (not
	// connections); 0 selects runtime.NumCPU(). Excess requests queue.
	MaxConcurrent int
	// MaxQueue bounds requests waiting for an execution slot; beyond it
	// arrivals are shed with 429. 0 selects 4*MaxConcurrent; negative
	// disables queueing entirely (every excess request sheds).
	MaxQueue int
	// QueueWait bounds how long one request may wait queued before it is
	// shed with 429 (0 selects 2s). Its ceiling in seconds is the
	// Retry-After hint on every 429.
	QueueWait time.Duration
	// DefaultDeadline is both the default and the upper cap of the
	// per-request deadline_ms run budget: requests without one run under
	// DefaultDeadline, and a longer request deadline is clamped to it.
	// 0 means no deadline unless the request sets one.
	DefaultDeadline time.Duration
	// MaxSamplesCap caps per-request sample budgets: a fixed "samples"
	// override beyond it is rejected outright (fixed-N results are never
	// silently truncated), while adaptive "max_samples" budgets are
	// clamped to it. 0 means uncapped.
	MaxSamplesCap int
	// Tail supplies default tail-sampling options for DOMAIN queries;
	// per-request fields override them.
	Tail mcdbr.TailSampleOptions
}

// Server is the HTTP query service. Create one with New; its Handler can
// be mounted in any http server, or use Serve for a managed listener with
// graceful shutdown.
type Server struct {
	engine *mcdbr.Engine
	opts   Options
	admit  *admit.Controller
	mux    *http.ServeMux
	start  time.Time
}

// New builds a server over a (shared, concurrency-safe) engine.
func New(e *mcdbr.Engine, opts Options) *Server {
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = runtime.NumCPU()
	}
	s := &Server{
		engine: e,
		opts:   opts,
		admit: admit.New(admit.Options{
			MaxConcurrent: opts.MaxConcurrent,
			MaxQueue:      opts.MaxQueue,
			QueueWait:     opts.QueueWait,
		}),
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/explain", s.handleExplain)
	s.mux.HandleFunc("/tables", s.handleTables)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// MaxConcurrent reports the query worker limit.
func (s *Server) MaxConcurrent() int { return s.admit.MaxConcurrent() }

// AdmitStats exposes the admission controller's live counters (the
// /healthz "admission" object) for in-process harnesses.
func (s *Server) AdmitStats() admit.Stats { return s.admit.Stats() }

// Serve listens on addr until ctx is cancelled, then shuts down
// gracefully: the admission queue is drained first — every parked request
// is rejected promptly with 503 instead of hanging out the grace period —
// then in-flight requests get up to grace to finish (grace <= 0 selects
// 10s). It returns nil on clean shutdown.
func (s *Server) Serve(ctx context.Context, addr string, grace time.Duration) error {
	if grace <= 0 {
		grace = 10 * time.Second
	}
	hs := &http.Server{Addr: addr, Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Queued requests can only end in 503 once shutdown begins; fail
		// them now so their clients can retry elsewhere immediately.
		s.admit.Drain()
		//mcdbr:ctxpropagate ok(the grace period must outlive the just-cancelled serve ctx; deriving from it would skip draining)
		shCtx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			return fmt.Errorf("server: shutdown: %w", err)
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

// QueryRequest is the body of POST /query. SQL is required; the remaining
// fields are per-run overrides (see mcdbr.RunOptions). Seed and Samples
// need a preparable statement — a SELECT without GROUP BY — and are
// rejected otherwise; Workers additionally applies to tail sampling in
// GROUP BY queries via the tail options.
//
// POST /query?stream=1 streams the same request as Server-Sent Events:
// one "progress" event per adaptive round (or per fixed-N round with
// convergence disabled) carrying cumulative estimates and CI half-widths,
// then one "result" event whose data is the exact QueryResponse the
// non-streaming endpoint would return, or an "error" event.
type QueryRequest struct {
	SQL     string `json:"sql"`
	Seed    uint64 `json:"seed,omitempty"`
	Samples int    `json:"samples,omitempty"`
	Workers int    `json:"workers,omitempty"`
	// TotalSamples is the tail-sampling budget N for DOMAIN queries
	// (0 = server default, then Appendix C selection).
	TotalSamples int `json:"total_samples,omitempty"`
	// TargetRelError, when > 0, turns the run adaptive (or overrides the
	// statement's UNTIL ERROR target); Confidence and MaxSamples refine the
	// rule. See mcdbr.RunOptions.
	TargetRelError float64 `json:"target_rel_error,omitempty"`
	Confidence     float64 `json:"confidence,omitempty"`
	MaxSamples     int     `json:"max_samples,omitempty"`
	// Priority selects the admission class: "interactive", "normal"
	// (default, also ""), or "batch". Higher classes are granted slots
	// first; within a class the queue is FIFO.
	Priority string `json:"priority,omitempty"`
	// DeadlineMS caps this query's wall-clock run time in milliseconds,
	// clamped to the server's -default-deadline. An adaptive query whose
	// deadline fires mid-run returns its partial estimate with
	// "degraded": true; a fixed-N query fails with 504.
	DeadlineMS int `json:"deadline_ms,omitempty"`
	// MaxBytes tightens the run's memory budget (mcdbr.RunOptions.MaxBytes).
	// Negative values are rejected: a request cannot disable the server's
	// budget.
	MaxBytes int64 `json:"max_bytes,omitempty"`
	// NoDegrade opts an adaptive query out of deadline degradation: the
	// deadline becomes a hard 504 like fixed-N.
	NoDegrade bool `json:"no_degrade,omitempty"`
}

// DistSummary describes a result distribution without shipping every
// sample. CVaR95/CVaR99 are the expected shortfalls beyond the 0.95- and
// 0.99-quantiles (Distribution.CVaR): the conditional mean of the result
// given that it lies in the tail.
type DistSummary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Std    float64 `json:"std"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Q50    float64 `json:"q50"`
	Q90    float64 `json:"q90"`
	Q99    float64 `json:"q99"`
	CVaR95 float64 `json:"cvar95"`
	CVaR99 float64 `json:"cvar99"`
}

// GroupSummary is one group of a grouped (or multi-aggregate) result:
// the group key, the HAVING inclusion fraction, and one DistSummary per
// aggregate in select-list order.
type GroupSummary struct {
	Key       []string       `json:"key"`
	Inclusion float64        `json:"inclusion"`
	Dists     []*DistSummary `json:"dists"`
}

// GroupedSummary is the ordered multi-column view of a GROUP BY and/or
// multi-aggregate query result.
type GroupedSummary struct {
	GroupCols []string       `json:"group_cols"`
	AggCols   []string       `json:"agg_cols"`
	Groups    []GroupSummary `json:"groups"`
}

// TableSummary ships a small deterministic relation (grouped/multi
// scalar aggregates).
type TableSummary struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// TailSummary extends DistSummary with the MCDB-R tail estimates.
type TailSummary struct {
	DistSummary
	QuantileEstimate  float64 `json:"quantile_estimate"`
	P                 float64 `json:"p"`
	Lower             bool    `json:"lower"`
	ExpectedShortfall float64 `json:"expected_shortfall"`
	Replenishments    int     `json:"replenishments"`
}

// AggregateCISummary is one (group, aggregate) confidence interval of an
// adaptive run. Non-finite values (an interval before two replicates, a
// relative error at mean zero) are reported as -1, since JSON has no
// Inf/NaN.
type AggregateCISummary struct {
	Group       string  `json:"group,omitempty"`
	Agg         string  `json:"agg"`
	N           int64   `json:"n"`
	Mean        float64 `json:"mean"`
	HalfWidth   float64 `json:"half_width"`
	RelError    float64 `json:"rel_error"`
	Converged   bool    `json:"converged"`
	ConvergedAt int     `json:"converged_at,omitempty"`
}

// AdaptiveSummary reports how an adaptive (UNTIL ERROR) or progressive
// run stopped.
type AdaptiveSummary struct {
	TargetRelError float64              `json:"target_rel_error"`
	Confidence     float64              `json:"confidence"`
	MaxSamples     int                  `json:"max_samples"`
	SamplesUsed    int                  `json:"samples_used"`
	Rounds         int                  `json:"rounds"`
	Converged      bool                 `json:"converged"`
	Degraded       bool                 `json:"degraded,omitempty"`
	CIs            []AggregateCISummary `json:"cis"`
}

// ProgressEvent is the data payload of one SSE "progress" event.
type ProgressEvent struct {
	Round       int                  `json:"round"`
	SamplesUsed int                  `json:"samples_used"`
	Converged   bool                 `json:"converged"`
	CIs         []AggregateCISummary `json:"cis"`
}

// QueryResponse is the body of a successful POST /query. Grouped carries
// the ordered multi-column result of GROUP BY and multi-aggregate
// queries; GroupDists/GroupTails remain the legacy single-aggregate map
// views.
type QueryResponse struct {
	Kind       string                  `json:"kind"`
	Scalar     *float64                `json:"scalar,omitempty"`
	Table      *TableSummary           `json:"table,omitempty"`
	Dist       *DistSummary            `json:"dist,omitempty"`
	Tail       *TailSummary            `json:"tail,omitempty"`
	Grouped    *GroupedSummary         `json:"grouped,omitempty"`
	GroupDists map[string]*DistSummary `json:"group_dists,omitempty"`
	GroupTails map[string]*TailSummary `json:"group_tails,omitempty"`
	Adaptive   *AdaptiveSummary        `json:"adaptive,omitempty"`
	// Degraded marks a partial result: the query's deadline fired mid-run
	// and Adaptive describes the estimate accumulated by then (still
	// bit-identical to a fixed run of that count). See DESIGN.md §12.
	Degraded   bool    `json:"degraded,omitempty"`
	Explain    string  `json:"explain,omitempty"`
	PlanCached bool    `json:"plan_cached"`
	ElapsedMS  float64 `json:"elapsed_ms"`
}

// ErrorResponse is the body of any non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// admitError maps an admission failure to its HTTP status: shed and
// queue-wait-exceeded requests get 429 with a Retry-After hint, a
// draining server answers 503, and a client that disconnected while
// queued gets 503 (it is no longer listening anyway).
func (s *Server) admitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, admit.ErrQueueFull) || errors.Is(err, admit.ErrQueueWait):
		w.Header().Set("Retry-After", strconv.Itoa(s.admit.RetryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, err)
	default:
		writeError(w, http.StatusServiceUnavailable, err)
	}
}

// validateBudgets rejects per-request budgets the server caps forbid.
// Fixed sample overrides beyond MaxSamplesCap are an error, not a clamp:
// a fixed-N result silently truncated to the cap would claim to be a
// MONTECARLO(n) run it is not.
func (s *Server) validateBudgets(req QueryRequest) error {
	if req.DeadlineMS < 0 {
		return fmt.Errorf("server: deadline_ms must be >= 0")
	}
	if req.MaxBytes < 0 {
		return fmt.Errorf("server: max_bytes must be >= 0; the server memory budget cannot be disabled per request")
	}
	if cap := s.opts.MaxSamplesCap; cap > 0 && req.Samples > cap {
		return fmt.Errorf("server: samples %d exceeds the server cap %d (fixed-N runs are never truncated; lower samples or use the adaptive max_samples budget)", req.Samples, cap)
	}
	return nil
}

// queryContext derives the run context: the request's deadline clamped to
// the server's DefaultDeadline, or DefaultDeadline alone when the request
// sets none. With neither, the run is bounded only by the client staying
// connected.
func (s *Server) queryContext(parent context.Context, req QueryRequest) (context.Context, context.CancelFunc) {
	d := s.opts.DefaultDeadline
	if req.DeadlineMS > 0 {
		if rd := time.Duration(req.DeadlineMS) * time.Millisecond; d <= 0 || rd < d {
			d = rd
		}
	}
	if d <= 0 {
		return parent, func() {}
	}
	return context.WithTimeout(parent, d)
}

// errStatus maps an execution error to its HTTP status. Deadline-exceeded
// runs — a fixed-N query out of time, or an adaptive one that opted out
// of degradation — are the upstream's timeout, 504.
func errStatus(err error) int {
	var pe *mcdbr.PanicError
	switch {
	case errors.As(err, &pe):
		// A recovered engine panic is a server fault, not a bad request.
		return http.StatusInternalServerError
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("server: %s needs POST", r.URL.Path))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: bad request body: %w", err))
		return false
	}
	return true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.SQL == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: missing \"sql\""))
		return
	}
	class, err := admit.ParseClass(req.Priority)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.validateBudgets(req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if v := r.URL.Query().Get("stream"); v == "1" || v == "true" {
		s.handleQueryStream(w, r, req, class)
		return
	}
	if err := s.admit.Acquire(r.Context(), class); err != nil {
		s.admitError(w, err)
		return
	}
	defer s.admit.Release()
	ctx, cancel := s.queryContext(r.Context(), req)
	defer cancel()

	start := time.Now()
	res, cached, err := s.execute(ctx, req, nil)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	resp := buildResponse(res)
	resp.PlanCached = cached
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	if resp.Degraded {
		s.admit.NoteDegraded()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleQueryStream serves POST /query?stream=1 as Server-Sent Events:
// progress events per adaptive round, then a final result event carrying
// the exact QueryResponse of the non-streaming endpoint. The request
// context is the run's cancellation: a disconnected client aborts the
// query at its next unit of work.
func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request, req QueryRequest, class admit.Class) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("server: response writer does not support streaming"))
		return
	}
	stmt, err := sqlish.Parse(req.SQL)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if _, isSelect := stmt.(*sqlish.SelectStmt); !isSelect {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: stream=1 needs a SELECT statement"))
		return
	}
	if err := s.admit.Acquire(r.Context(), class); err != nil {
		s.admitError(w, err)
		return
	}
	defer s.admit.Release()
	ctx, cancel := s.queryContext(r.Context(), req)
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	start := time.Now()
	progress := func(u mcdbr.ProgressUpdate) {
		writeSSE(w, fl, "progress", ProgressEvent{
			Round:       u.Round,
			SamplesUsed: u.SamplesUsed,
			Converged:   u.Converged,
			CIs:         summarizeCIs(u.CIs),
		})
	}
	res, cached, err := s.execute(ctx, req, progress)
	if err != nil {
		// Headers are sent; the error travels as an event.
		writeSSE(w, fl, "error", ErrorResponse{Error: err.Error()})
		return
	}
	resp := buildResponse(res)
	resp.PlanCached = cached
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	if resp.Degraded {
		s.admit.NoteDegraded()
	}
	writeSSE(w, fl, "result", resp)
}

// writeSSE emits one Server-Sent Event with a JSON data payload.
func writeSSE(w http.ResponseWriter, fl http.Flusher, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	fl.Flush()
}

// execute routes a request: SELECT statements — GROUP BY and
// multi-aggregate included, since ISSUE 5 made aggregation part of the
// single compiled plan — go through Prepare (hitting the plan cache for
// repeated statements) and run under the request context, so a
// disconnected client aborts its query; everything else (CREATE TABLE,
// EXPLAIN) runs through Exec. The statement kind is sniffed with one
// parse up front so non-preparable statements neither inflate the
// plan-cache miss counter nor get parsed twice on the routing decision.
func (s *Server) execute(ctx context.Context, req QueryRequest, progress func(mcdbr.ProgressUpdate)) (*mcdbr.ExecResult, bool, error) {
	tail := s.opts.Tail
	if req.TotalSamples > 0 {
		tail.TotalSamples = req.TotalSamples
	}
	if req.Workers > 0 {
		tail.Parallelism = req.Workers
	}
	stmt, err := sqlish.Parse(req.SQL)
	if err != nil {
		return nil, false, err
	}
	if _, ok := stmt.(*sqlish.SelectStmt); ok {
		pq, err := s.engine.Prepare(req.SQL)
		if err != nil {
			return nil, false, err
		}
		// The adaptive sample budget is clamped to the server cap (unlike
		// fixed "samples", which validateBudgets rejects outright): an
		// adaptive run stopped early at the cap is still a correct partial
		// estimate.
		maxSamples := req.MaxSamples
		if cap := s.opts.MaxSamplesCap; cap > 0 && (maxSamples == 0 || maxSamples > cap) {
			maxSamples = cap
		}
		res, err := pq.RunCtx(ctx, mcdbr.RunOptions{
			Seed:              req.Seed,
			Samples:           req.Samples,
			Workers:           req.Workers,
			Tail:              tail,
			MaxBytes:          req.MaxBytes,
			TargetRelError:    req.TargetRelError,
			Confidence:        req.Confidence,
			MaxSamples:        maxSamples,
			DegradeOnDeadline: !req.NoDegrade,
			Progress:          progress,
		})
		if err != nil {
			return nil, false, err
		}
		return res, pq.CacheHit(), nil
	}
	// Exec has no per-run seed/samples channel; reject the overrides
	// loudly rather than silently computing with engine defaults.
	if req.Seed != 0 || req.Samples != 0 || req.TargetRelError != 0 {
		return nil, false, fmt.Errorf("server: per-request seed/samples need a preparable SELECT statement; this statement executes with engine defaults — drop the overrides to run it")
	}
	res, err := s.engine.ExecWithOptions(req.SQL, tail)
	if err != nil {
		return nil, false, err
	}
	return res, false, nil
}

func summarize(d *mcdbr.Distribution) *DistSummary {
	ecdf := d.ECDF()
	return &DistSummary{
		N:      len(d.Samples),
		Mean:   d.Mean(),
		Std:    d.Std(),
		Min:    ecdf.Min(),
		Max:    ecdf.Max(),
		Q50:    ecdf.Quantile(0.50),
		Q90:    ecdf.Quantile(0.90),
		Q99:    ecdf.Quantile(0.99),
		CVaR95: d.CVaR(0.95),
		CVaR99: d.CVaR(0.99),
	}
}

func summarizeGrouped(gd *mcdbr.GroupedDistribution) *GroupedSummary {
	out := &GroupedSummary{GroupCols: gd.GroupCols, AggCols: gd.AggCols}
	for i := range gd.Groups {
		g := &gd.Groups[i]
		gs := GroupSummary{Inclusion: g.Inclusion}
		for _, v := range g.Key {
			gs.Key = append(gs.Key, v.String())
		}
		for _, d := range g.Dists {
			gs.Dists = append(gs.Dists, summarize(d))
		}
		out.Groups = append(out.Groups, gs)
	}
	return out
}

// jsonNum maps NaN and ±Inf — which encoding/json rejects — to -1, the
// wire format's "undefined" sentinel.
func jsonNum(f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return -1
	}
	return f
}

func summarizeCIs(cis []mcdbr.AggregateCI) []AggregateCISummary {
	out := make([]AggregateCISummary, len(cis))
	for i, ci := range cis {
		out[i] = AggregateCISummary{
			Group:       ci.Group,
			Agg:         ci.Agg,
			N:           ci.N,
			Mean:        jsonNum(ci.Mean),
			HalfWidth:   jsonNum(ci.HalfWidth),
			RelError:    jsonNum(ci.RelError),
			Converged:   ci.Converged,
			ConvergedAt: ci.ConvergedAt,
		}
	}
	return out
}

func summarizeAdaptive(rep *mcdbr.AdaptiveReport) *AdaptiveSummary {
	return &AdaptiveSummary{
		TargetRelError: rep.TargetRelError,
		Confidence:     rep.Confidence,
		MaxSamples:     rep.MaxSamples,
		SamplesUsed:    rep.SamplesUsed,
		Rounds:         rep.Rounds,
		Converged:      rep.Converged,
		Degraded:       rep.Degraded,
		CIs:            summarizeCIs(rep.CIs),
	}
}

func summarizeTail(t *mcdbr.TailResult) *TailSummary {
	return &TailSummary{
		DistSummary:       *summarize(&t.Distribution),
		QuantileEstimate:  t.QuantileEstimate,
		P:                 t.P,
		Lower:             t.Lower,
		ExpectedShortfall: t.ExpectedShortfall,
		Replenishments:    t.Diag.Replenishments,
	}
}

func buildResponse(res *mcdbr.ExecResult) *QueryResponse {
	resp := &QueryResponse{Kind: res.Kind.String()}
	switch res.Kind {
	case mcdbr.ExecScalar:
		v := res.Scalar
		resp.Scalar = &v
	case mcdbr.ExecTable:
		t := &TableSummary{}
		for _, c := range res.Table.Schema().Columns() {
			t.Columns = append(t.Columns, c.Name)
		}
		for _, r := range res.Table.Rows() {
			row := make([]string, len(r))
			for i, v := range r {
				row[i] = v.String()
			}
			t.Rows = append(t.Rows, row)
		}
		resp.Table = t
	case mcdbr.ExecDistribution:
		resp.Dist = summarize(res.Dist)
	case mcdbr.ExecTail:
		resp.Tail = summarizeTail(res.Tail)
	case mcdbr.ExecGroupedDistribution:
		resp.Grouped = summarizeGrouped(res.Grouped)
		if res.GroupDists != nil {
			resp.GroupDists = make(map[string]*DistSummary, len(res.GroupDists))
			for g, d := range res.GroupDists {
				resp.GroupDists[g] = summarize(d)
			}
		}
	case mcdbr.ExecGroupedTail:
		resp.GroupTails = make(map[string]*TailSummary, len(res.GroupTails))
		for g, t := range res.GroupTails {
			resp.GroupTails[g] = summarizeTail(t)
		}
	case mcdbr.ExecExplained:
		resp.Explain = res.Explain.String()
	}
	if res.Adaptive != nil {
		resp.Adaptive = summarizeAdaptive(res.Adaptive)
		resp.Degraded = res.Adaptive.Degraded
	}
	return resp
}

// ExplainRequest is the body of POST /explain.
type ExplainRequest struct {
	SQL string `json:"sql"`
}

// ExplainResponse is the body of a successful POST /explain.
type ExplainResponse struct {
	Logical   string   `json:"logical"`
	Physical  string   `json:"physical"`
	Rules     []string `json:"rules"`
	FinalPred string   `json:"final_pred,omitempty"`
	Aggregate string   `json:"aggregate"`
	Notes     []string `json:"notes,omitempty"`
	Text      string   `json:"text"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req ExplainRequest
	if !decodeBody(w, r, &req) {
		return
	}
	x, err := s.engine.Explain(req.SQL)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, ExplainResponse{
		Logical:   x.Logical,
		Physical:  x.Physical,
		Rules:     x.Rules,
		FinalPred: x.FinalPred,
		Aggregate: x.Aggregate,
		Notes:     x.Notes,
		Text:      x.String(),
	})
}

// TablesResponse is the body of GET /tables.
type TablesResponse struct {
	Tables       []string `json:"tables"`
	RandomTables []string `json:"random_tables"`
	VGFunctions  []string `json:"vg_functions"`
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("server: /tables needs GET"))
		return
	}
	writeJSON(w, http.StatusOK, TablesResponse{
		Tables:       s.engine.Catalog().Names(),
		RandomTables: s.engine.RandomTableNames(),
		VGFunctions:  s.engine.VGNames(),
	})
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status          string  `json:"status"`
	UptimeSeconds   float64 `json:"uptime_s"`
	Goroutines      int     `json:"goroutines"`
	MaxConcurrent   int     `json:"max_concurrent"`
	ActiveQueries   int     `json:"active_queries"`
	PlanCacheHits   uint64  `json:"plan_cache_hits"`
	PlanCacheMisses uint64  `json:"plan_cache_misses"`
	PlanCacheSize   int     `json:"plan_cache_size"`
	// PrefixCache* report the engine's deterministic-prefix
	// materialization cache (see mcdbr.Engine.PrefixCacheStats).
	PrefixCacheHits   uint64 `json:"prefix_cache_hits"`
	PrefixCacheMisses uint64 `json:"prefix_cache_misses"`
	PrefixCacheSize   int    `json:"prefix_cache_size"`
	// Admission is the admission controller's live view: queue depth,
	// in-flight count, shed/degraded/completed counters, and per-class
	// queue-wait p95s.
	Admission admit.Stats `json:"admission"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	hits, misses, size := s.engine.PlanCacheStats()
	phits, pmisses, psize := s.engine.PrefixCacheStats()
	st := s.admit.Stats()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:            "ok",
		UptimeSeconds:     time.Since(s.start).Seconds(),
		Goroutines:        runtime.NumGoroutine(),
		MaxConcurrent:     st.MaxConcurrent,
		ActiveQueries:     st.InFlight,
		PlanCacheHits:     hits,
		PlanCacheMisses:   misses,
		PlanCacheSize:     size,
		PrefixCacheHits:   phits,
		PrefixCacheMisses: pmisses,
		PrefixCacheSize:   psize,
		Admission:         st,
	})
}
