package server

// Serving-hardening tests (ISSUE 9): overload shedding, queue-wait
// budgets, deadline degradation, prompt shutdown of queued requests, and
// the -race storm that proves no execution slot leaks under mixed
// admitted/queued/shed/cancelled traffic.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// slowSQL runs long enough to hold a slot while the test probes the
// server from outside (cancelled or deadlined, never left to finish).
const slowSQL = `SELECT SUM(val) AS totalLoss FROM Losses WITH RESULTDISTRIBUTION MONTECARLO(5000000)`

// degradeSQL cannot converge before MaxSamples, so a short deadline
// always fires mid-run with at least one round complete.
const degradeSQL = `SELECT SUM(val) AS totalLoss FROM Losses
WITH RESULTDISTRIBUTION MONTECARLO(UNTIL ERROR < 0.0000001 AT 95%, MAX 100000000)`

// occupy starts queries that pin all execution slots and returns a cancel
// that releases them. It waits until the controller reports them in flight.
func occupy(t *testing.T, s *Server, url string, n int) context.CancelFunc {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < n; i++ {
		b, _ := json.Marshal(QueryRequest{SQL: slowSQL})
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/query", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		go func() {
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.AdmitStats().InFlight < n {
		if time.Now().After(deadline) {
			cancel()
			t.Fatal("slow queries never occupied the slots")
		}
		time.Sleep(time.Millisecond)
	}
	return cancel
}

// TestServerShedsWith429: with the queue disabled, a request beyond
// MaxConcurrent is shed immediately with 429 and a Retry-After hint
// instead of queueing unboundedly.
func TestServerShedsWith429(t *testing.T) {
	s := New(testEngine(t), Options{MaxConcurrent: 1, MaxQueue: -1, QueueWait: 3 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	release := occupy(t, s, ts.URL, 1)
	defer release()

	resp, body := postJSON(t, ts.URL+"/query", QueryRequest{SQL: mcSQL})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want the queue-wait ceiling", ra)
	}
	var e ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("shed body = %s", body)
	}
	if st := s.AdmitStats(); st.Shed != 1 {
		t.Fatalf("shed counter = %+v", st)
	}
}

// TestServerQueueWait429: a queued request that outlives the queue-wait
// budget is shed with 429 rather than waiting forever.
func TestServerQueueWait429(t *testing.T) {
	s := New(testEngine(t), Options{MaxConcurrent: 1, MaxQueue: 4, QueueWait: 50 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	release := occupy(t, s, ts.URL, 1)
	defer release()

	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/query", QueryRequest{SQL: mcSQL})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("shed after %s, budget was 50ms", waited)
	}
	if st := s.AdmitStats(); st.TimedOut != 1 {
		t.Fatalf("timed_out counter = %+v", st)
	}
}

// TestServerBudgetValidation: bad per-request budgets are 400s before
// admission.
func TestServerBudgetValidation(t *testing.T) {
	s := New(testEngine(t), Options{MaxConcurrent: 2, MaxSamplesCap: 1000})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cases := []QueryRequest{
		{SQL: mcSQL, Priority: "urgent"},
		{SQL: mcSQL, DeadlineMS: -1},
		{SQL: mcSQL, MaxBytes: -1},
		{SQL: mcSQL, Samples: 2000}, // fixed-N above the cap: rejected, not clamped
	}
	for i, req := range cases {
		resp, body := postJSON(t, ts.URL+"/query", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("case %d: status = %d: %s", i, resp.StatusCode, body)
		}
	}
	// An adaptive max_samples above the cap is clamped, not rejected: the
	// run stops at the cap and reports it.
	resp, body := postJSON(t, ts.URL+"/query", QueryRequest{SQL: degradeSQL, MaxSamples: 1 << 30})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("adaptive clamp = %d: %s", resp.StatusCode, body)
	}
	var q QueryResponse
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}
	if q.Adaptive == nil || q.Adaptive.MaxSamples != 1000 || q.Adaptive.SamplesUsed > 1000 {
		t.Fatalf("adaptive budget not clamped: %+v", q.Adaptive)
	}
	// Priorities are accepted end to end.
	resp, body = postJSON(t, ts.URL+"/query", QueryRequest{SQL: mcSQL, Priority: "interactive"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("interactive query = %d: %s", resp.StatusCode, body)
	}
}

// TestServerDeadlineDegrades: an adaptive query whose server-imposed
// deadline fires mid-run returns 200 with degraded: true and a usable
// partial CI; opting out (or running fixed-N) turns the deadline into 504.
func TestServerDeadlineDegrades(t *testing.T) {
	s := New(testEngine(t), Options{MaxConcurrent: 2, DefaultDeadline: 150 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/query", QueryRequest{SQL: degradeSQL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degradable query = %d: %s", resp.StatusCode, body)
	}
	var q QueryResponse
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}
	if !q.Degraded || q.Adaptive == nil || !q.Adaptive.Degraded {
		t.Fatalf("response not degraded: %s", body)
	}
	if q.Adaptive.SamplesUsed == 0 || len(q.Adaptive.CIs) != 1 || q.Adaptive.CIs[0].HalfWidth <= 0 {
		t.Fatalf("degraded response lacks a partial estimate: %s", body)
	}
	if q.Dist == nil || q.Dist.N != q.Adaptive.SamplesUsed {
		t.Fatalf("degraded dist = %+v, adaptive = %+v", q.Dist, q.Adaptive)
	}
	if st := s.AdmitStats(); st.Degraded != 1 {
		t.Fatalf("degraded counter = %+v", st)
	}

	// Opting out makes the deadline a hard 504.
	resp, body = postJSON(t, ts.URL+"/query", QueryRequest{SQL: degradeSQL, NoDegrade: true})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("no_degrade = %d: %s", resp.StatusCode, body)
	}
	// Fixed-N keeps the strict contract: deadline is always 504.
	resp, body = postJSON(t, ts.URL+"/query", QueryRequest{SQL: slowSQL})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("fixed-N deadline = %d: %s", resp.StatusCode, body)
	}
	// A per-request deadline longer than the server cap is clamped: still 504.
	resp, body = postJSON(t, ts.URL+"/query", QueryRequest{SQL: slowSQL, DeadlineMS: 60000})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("clamped deadline = %d: %s", resp.StatusCode, body)
	}
}

// TestServeShutdownDrainsQueued is the satellite-1 regression test: a
// request parked in the admission queue when shutdown begins must be
// rejected promptly with 503, not hang until the grace timeout.
func TestServeShutdownDrainsQueued(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	s := New(testEngine(t), Options{MaxConcurrent: 1, MaxQueue: 4, QueueWait: time.Minute})
	ctx, cancelServe := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, addr, 30*time.Second) }()
	base := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for {
		if r, err := http.Get(base + "/healthz"); err == nil {
			r.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never came up")
		}
		time.Sleep(5 * time.Millisecond)
	}

	release := occupy(t, s, base, 1)
	defer release()

	// Park one request in the queue.
	type result struct {
		status int
		err    error
	}
	queued := make(chan result, 1)
	go func() {
		b, _ := json.Marshal(QueryRequest{SQL: mcSQL})
		resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(b))
		if err != nil {
			queued <- result{err: err}
			return
		}
		resp.Body.Close()
		queued <- result{status: resp.StatusCode}
	}()
	deadline = time.Now().Add(10 * time.Second)
	for s.AdmitStats().QueueDepth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	cancelServe()
	select {
	case r := <-queued:
		if r.err != nil {
			t.Fatalf("queued request failed at transport level: %v", r.err)
		}
		if r.status != http.StatusServiceUnavailable {
			t.Fatalf("queued request got %d, want 503", r.status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued request hung through shutdown (the pre-admit drain bug)")
	}

	// Release the in-flight query so Serve can finish its graceful exit.
	release()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not shut down")
	}
}

// sseDisconnect starts a streaming query and drops the connection after
// the first progress event.
func sseDisconnect(t *testing.T, url string) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	b, _ := json.Marshal(QueryRequest{SQL: degradeSQL})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/query?stream=1", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return // shed or shutdown race: nothing to disconnect from
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if bytes.HasPrefix(sc.Bytes(), []byte("event: progress")) {
			return // deferred cancel drops the stream mid-flight
		}
	}
}

// TestServerHammerNoSlotLeak is the satellite-3 storm, run under -race in
// CI: concurrent clients mixing fast queries, slow queries cancelled
// mid-run, requests cancelled while queued, shed requests, and SSE
// streams dropped mid-flight. Afterwards the admission counters must
// balance and full capacity must be immediately reusable.
func TestServerHammerNoSlotLeak(t *testing.T) {
	s := New(testEngine(t), Options{MaxConcurrent: 2, MaxQueue: 4, QueueWait: 40 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	priorities := []string{"", "interactive", "normal", "batch"}
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 8; i++ {
				switch rng.Intn(4) {
				case 0: // fast query, should usually succeed or shed
					resp, _ := postJSON(t, ts.URL+"/query", QueryRequest{
						SQL: mcSQL, Priority: priorities[rng.Intn(len(priorities))],
					})
					switch resp.StatusCode {
					case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
					default:
						t.Errorf("fast query status %d", resp.StatusCode)
					}
				case 1: // slow query cancelled mid-run
					ctx, cancel := context.WithTimeout(context.Background(), time.Duration(5+rng.Intn(30))*time.Millisecond)
					b, _ := json.Marshal(QueryRequest{SQL: slowSQL})
					req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query", bytes.NewReader(b))
					req.Header.Set("Content-Type", "application/json")
					if resp, err := http.DefaultClient.Do(req); err == nil {
						resp.Body.Close()
					}
					cancel()
				case 2: // cancelled while (possibly) queued
					ctx, cancel := context.WithTimeout(context.Background(), time.Duration(rng.Intn(5))*time.Millisecond)
					b, _ := json.Marshal(QueryRequest{SQL: mcSQL})
					req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query", bytes.NewReader(b))
					req.Header.Set("Content-Type", "application/json")
					if resp, err := http.DefaultClient.Do(req); err == nil {
						resp.Body.Close()
					}
					cancel()
				case 3: // SSE stream dropped mid-flight
					sseDisconnect(t, ts.URL)
				}
			}
		}(g)
	}
	wg.Wait()

	// Cancelled runs release their slots asynchronously at the next unit
	// of work; wait for the controller to settle.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.AdmitStats()
		if st.InFlight == 0 && st.QueueDepth == 0 {
			if st.Admitted != st.Completed {
				t.Fatalf("admitted %d != completed %d (leaked slot): %+v", st.Admitted, st.Completed, st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("controller never settled: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Full capacity must be immediately usable: MaxConcurrent parallel
	// queries all succeed with an empty queue.
	var wg2 sync.WaitGroup
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			resp, body := postJSON(t, ts.URL+"/query", QueryRequest{SQL: mcSQL})
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("post-storm query = %d: %s", resp.StatusCode, body)
			}
		}()
	}
	wg2.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
