package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/expr"
	"repro/internal/workload"
	"repro/mcdbr"
)

func testEngine(t *testing.T) *mcdbr.Engine {
	t.Helper()
	e := mcdbr.New(mcdbr.WithSeed(42), mcdbr.WithParallelism(2))
	e.RegisterTable(workload.LossMeans(30, 2, 8, 5))
	if err := e.DefineRandomTable(mcdbr.RandomTable{
		Name: "losses", ParamTable: "means", VG: "Normal",
		VGParams: []expr.Expr{expr.C("m"), expr.F(1.0)},
		Columns:  []mcdbr.RandomCol{{Name: "cid", FromParam: "cid"}, {Name: "val", VGOut: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	return e
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

const mcSQL = `SELECT SUM(val) AS totalLoss FROM Losses WITH RESULTDISTRIBUTION MONTECARLO(60)`

func TestServerEndpoints(t *testing.T) {
	s := New(testEngine(t), Options{MaxConcurrent: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// healthz
	resp, body := func() (*http.Response, []byte) {
		r, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var b bytes.Buffer
		b.ReadFrom(r.Body)
		return r, b.Bytes()
	}()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d: %s", resp.StatusCode, body)
	}
	var health HealthResponse
	if err := json.Unmarshal(body, &health); err != nil || health.Status != "ok" {
		t.Fatalf("healthz body %s (err %v)", body, err)
	}
	if health.MaxConcurrent != 4 {
		t.Fatalf("max_concurrent = %d", health.MaxConcurrent)
	}
	if health.Admission.MaxConcurrent != 4 || health.Admission.MaxQueue != 16 {
		t.Fatalf("admission sizing = %+v", health.Admission)
	}
	if len(health.Admission.Classes) != 3 {
		t.Fatalf("admission classes = %+v", health.Admission.Classes)
	}

	// tables
	r2, err := http.Get(ts.URL + "/tables")
	if err != nil {
		t.Fatal(err)
	}
	var tables TablesResponse
	if err := json.NewDecoder(r2.Body).Decode(&tables); err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if len(tables.Tables) == 0 || tables.Tables[0] != "means" {
		t.Fatalf("tables = %+v", tables.Tables)
	}
	if len(tables.RandomTables) != 1 || tables.RandomTables[0] != "losses" {
		t.Fatalf("random tables = %+v", tables.RandomTables)
	}
	if len(tables.VGFunctions) == 0 {
		t.Fatal("no VG functions listed")
	}

	// scalar query
	resp, body = postJSON(t, ts.URL+"/query", QueryRequest{SQL: `SELECT COUNT(*) FROM means`})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scalar query = %d: %s", resp.StatusCode, body)
	}
	var q QueryResponse
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}
	if q.Kind != "scalar" || q.Scalar == nil || *q.Scalar != 30 {
		t.Fatalf("scalar response = %s", body)
	}

	// Monte Carlo query: second request must hit the plan cache.
	resp, body = postJSON(t, ts.URL+"/query", QueryRequest{SQL: mcSQL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mc query = %d: %s", resp.StatusCode, body)
	}
	var q1 QueryResponse
	if err := json.Unmarshal(body, &q1); err != nil {
		t.Fatal(err)
	}
	if q1.Kind != "distribution" || q1.Dist == nil || q1.Dist.N != 60 {
		t.Fatalf("mc response = %s", body)
	}
	if q1.PlanCached {
		t.Fatal("first request reported a cached plan")
	}
	_, body = postJSON(t, ts.URL+"/query", QueryRequest{SQL: mcSQL, Seed: 7})
	var q2 QueryResponse
	if err := json.Unmarshal(body, &q2); err != nil {
		t.Fatal(err)
	}
	if !q2.PlanCached {
		t.Fatalf("second request missed the plan cache: %s", body)
	}
	if q2.Dist.Mean == q1.Dist.Mean {
		t.Fatal("per-request seed had no effect")
	}

	// explain
	resp, body = postJSON(t, ts.URL+"/explain", ExplainRequest{SQL: mcSQL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain = %d: %s", resp.StatusCode, body)
	}
	var ex ExplainResponse
	if err := json.Unmarshal(body, &ex); err != nil {
		t.Fatal(err)
	}
	if len(ex.Rules) == 0 || !strings.Contains(ex.Physical, "Seed(Normal)") {
		t.Fatalf("explain response = %s", body)
	}

	// bad SQL is a 400 with a JSON error, and the server stays up.
	resp, body = postJSON(t, ts.URL+"/query", QueryRequest{SQL: `SELEC nonsense`})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad sql = %d: %s", resp.StatusCode, body)
	}
	var e ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("error body = %s", body)
	}
	// missing sql
	resp, _ = postJSON(t, ts.URL+"/query", QueryRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing sql = %d", resp.StatusCode)
	}
	// wrong method
	r3, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query = %d", r3.StatusCode)
	}

	// healthz again: the admission counters saw the queries above. Every
	// served query was admitted and completed (nothing queued or shed at
	// this concurrency), so the live counters must balance.
	r4, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health = HealthResponse{}
	if err := json.NewDecoder(r4.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	r4.Body.Close()
	ad := health.Admission
	if ad.Admitted < 4 || ad.Completed != ad.Admitted {
		t.Fatalf("admission counters = %+v", ad)
	}
	if ad.InFlight != 0 || ad.QueueDepth != 0 || ad.Shed != 0 || ad.Degraded != 0 || ad.Draining {
		t.Fatalf("admission state = %+v", ad)
	}
	var normal bool
	for _, cs := range ad.Classes {
		if cs.Class == "normal" {
			normal = true
			if cs.Admitted != ad.Admitted {
				t.Fatalf("normal class admitted %d of %d", cs.Admitted, ad.Admitted)
			}
			if cs.WaitP95MS < 0 {
				t.Fatalf("wait p95 = %g", cs.WaitP95MS)
			}
		}
	}
	if !normal {
		t.Fatalf("no normal class in %+v", ad.Classes)
	}
}

// TestServerCreateThenQuery: a CREATE TABLE statement (not preparable)
// falls back to Exec, and the defined table is immediately queryable.
func TestServerCreateThenQuery(t *testing.T) {
	e := mcdbr.New(mcdbr.WithSeed(1))
	e.RegisterTable(workload.LossMeans(10, 2, 8, 3))
	s := New(e, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/query", QueryRequest{SQL: `CREATE TABLE L (CID, v) AS
FOR EACH CID IN means
WITH w AS Normal(VALUES(m, 1.0))
SELECT CID, w.* FROM w`})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create = %d: %s", resp.StatusCode, body)
	}
	var q QueryResponse
	if err := json.Unmarshal(body, &q); err != nil || q.Kind != "created" {
		t.Fatalf("create response = %s", body)
	}
	resp, body = postJSON(t, ts.URL+"/query", QueryRequest{SQL: `SELECT SUM(v) AS x FROM L WITH RESULTDISTRIBUTION MONTECARLO(20)`})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query over created table = %d: %s", resp.StatusCode, body)
	}
}

// TestServerConcurrentQueries fires many simultaneous requests at one
// server (run under -race in CI): every response must be a valid 200 and
// equal-seed responses must agree.
func TestServerConcurrentQueries(t *testing.T) {
	s := New(testEngine(t), Options{MaxConcurrent: 3})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, base := postJSON(t, ts.URL+"/query", QueryRequest{SQL: mcSQL})
	var want QueryResponse
	if err := json.Unmarshal(base, &want); err != nil || want.Dist == nil {
		t.Fatalf("baseline = %s", base)
	}

	const clients = 16
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			b, _ := json.Marshal(QueryRequest{SQL: mcSQL, Workers: 1 + c%3})
			resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(b))
			if err != nil {
				errc <- err
				return
			}
			defer resp.Body.Close()
			var q QueryResponse
			if err := json.NewDecoder(resp.Body).Decode(&q); err != nil {
				errc <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errc <- fmt.Errorf("client %d: status %d", c, resp.StatusCode)
				return
			}
			if q.Dist == nil || q.Dist.N != want.Dist.N || q.Dist.Mean != want.Dist.Mean {
				errc <- fmt.Errorf("client %d: diverging result %+v", c, q.Dist)
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if s.MaxConcurrent() != 3 {
		t.Fatalf("MaxConcurrent = %d", s.MaxConcurrent())
	}
}

// TestServeGracefulShutdown: Serve returns nil once its context is
// cancelled and the listener has drained.
func TestServeGracefulShutdown(t *testing.T) {
	s := New(testEngine(t), Options{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, "127.0.0.1:0", time.Second) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not shut down")
	}
}

// TestServerGroupedAndMultiAggregate: GROUP BY and multi-aggregate
// SELECTs run through the prepared path (plan_cached on repeat) and ship
// the ordered grouped JSON view plus the legacy map and CVaR fields.
func TestServerGroupedAndMultiAggregate(t *testing.T) {
	e := testEngine(t)
	s := New(e, Options{MaxConcurrent: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const sql = `SELECT SUM(val) AS x, AVG(val) AS a FROM Losses GROUP BY cid
WITH RESULTDISTRIBUTION MONTECARLO(30)`
	resp, body := postJSON(t, ts.URL+"/query", QueryRequest{SQL: sql})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grouped query = %d: %s", resp.StatusCode, body)
	}
	var out QueryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Kind != "grouped_distribution" || out.Grouped == nil {
		t.Fatalf("response = %s", body)
	}
	if len(out.Grouped.Groups) != 30 || len(out.Grouped.AggCols) != 2 {
		t.Fatalf("grouped = %+v", out.Grouped)
	}
	if out.Grouped.AggCols[0] != "x" || out.Grouped.AggCols[1] != "a" {
		t.Fatalf("agg cols = %v", out.Grouped.AggCols)
	}
	for _, g := range out.Grouped.Groups {
		if len(g.Key) != 1 || len(g.Dists) != 2 || g.Inclusion != 1 {
			t.Fatalf("group = %+v", g)
		}
		if g.Dists[0].N != 30 {
			t.Fatalf("group %v n = %d", g.Key, g.Dists[0].N)
		}
		// CVaR95 is a conditional tail mean: at least the 0.9-quantile.
		if g.Dists[0].CVaR95 < g.Dists[0].Q90 {
			t.Fatalf("group %v cvar95 %g < q90 %g", g.Key, g.Dists[0].CVaR95, g.Dists[0].Q90)
		}
	}
	// Second run of the same statement hits the plan cache.
	resp, body = postJSON(t, ts.URL+"/query", QueryRequest{SQL: sql})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat = %d: %s", resp.StatusCode, body)
	}
	out = QueryResponse{}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.PlanCached {
		t.Fatalf("grouped statement did not hit the plan cache: %s", body)
	}
	// Per-request seed/samples now work for GROUP BY too.
	resp, body = postJSON(t, ts.URL+"/query", QueryRequest{SQL: sql, Seed: 7, Samples: 12})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("override = %d: %s", resp.StatusCode, body)
	}
	out = QueryResponse{}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Grouped == nil || out.Grouped.Groups[0].Dists[0].N != 12 {
		t.Fatalf("override response = %s", body)
	}

	// Deterministic grouped aggregate over FTABLE-ish data: ExecTable JSON.
	if _, err := e.Exec(`SELECT SUM(val) AS totalLoss FROM Losses
WITH RESULTDISTRIBUTION MONTECARLO(20) FREQUENCYTABLE totalLoss`); err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, ts.URL+"/query", QueryRequest{SQL: `SELECT COUNT(*) AS n, MIN(totalLoss) AS lo FROM FTABLE`})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("table query = %d: %s", resp.StatusCode, body)
	}
	out = QueryResponse{}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Kind != "table" || out.Table == nil || len(out.Table.Rows) != 1 || len(out.Table.Columns) != 2 {
		t.Fatalf("table response = %s", body)
	}
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	name string
	data []byte
}

// postSSE posts a streaming query and parses the event stream.
func postSSE(t *testing.T, url string, body any) []sseEvent {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		var out bytes.Buffer
		_, _ = out.ReadFrom(resp.Body)
		t.Fatalf("content-type = %q (status %d): %s", ct, resp.StatusCode, out.String())
	}
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var events []sseEvent
	for _, block := range strings.Split(raw.String(), "\n\n") {
		var ev sseEvent
		for _, line := range strings.Split(block, "\n") {
			if name, ok := strings.CutPrefix(line, "event: "); ok {
				ev.name = name
			} else if data, ok := strings.CutPrefix(line, "data: "); ok {
				ev.data = []byte(data)
			}
		}
		if ev.name != "" {
			events = append(events, ev)
		}
	}
	return events
}

const adaptiveServerSQL = `SELECT SUM(val) AS totalLoss FROM Losses
WITH RESULTDISTRIBUTION MONTECARLO(UNTIL ERROR < 0.005 AT 95%, MAX 16384)`

// TestServerStreamAdaptive: POST /query?stream=1 emits progress events
// with monotonically shrinking half-widths and a final result event
// identical (modulo timing) to the non-streaming response.
func TestServerStreamAdaptive(t *testing.T) {
	s := New(testEngine(t), Options{MaxConcurrent: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	events := postSSE(t, ts.URL+"/query?stream=1", QueryRequest{SQL: adaptiveServerSQL})
	var progress []ProgressEvent
	var final *QueryResponse
	for _, ev := range events {
		switch ev.name {
		case "progress":
			var p ProgressEvent
			if err := json.Unmarshal(ev.data, &p); err != nil {
				t.Fatalf("bad progress event %s: %v", ev.data, err)
			}
			progress = append(progress, p)
		case "result":
			var q QueryResponse
			if err := json.Unmarshal(ev.data, &q); err != nil {
				t.Fatalf("bad result event %s: %v", ev.data, err)
			}
			final = &q
		case "error":
			t.Fatalf("error event: %s", ev.data)
		}
	}
	if len(progress) < 2 {
		t.Fatalf("want >= 2 progress events, got %d", len(progress))
	}
	if final == nil {
		t.Fatal("no result event")
	}
	prevSamples, prevHW := 0, 0.0
	for i, p := range progress {
		if p.SamplesUsed <= prevSamples {
			t.Fatalf("round %d: samples %d after %d", p.Round, p.SamplesUsed, prevSamples)
		}
		hw := p.CIs[0].HalfWidth
		if i > 0 && prevHW > 0 && hw >= prevHW {
			t.Fatalf("round %d: half-width %g did not shrink from %g", p.Round, hw, prevHW)
		}
		prevSamples, prevHW = p.SamplesUsed, hw
	}
	if final.Adaptive == nil || !final.Adaptive.Converged {
		t.Fatalf("final adaptive summary = %+v", final.Adaptive)
	}
	if final.Adaptive.SamplesUsed != progress[len(progress)-1].SamplesUsed {
		t.Fatalf("final used %d samples, last progress said %d", final.Adaptive.SamplesUsed, progress[len(progress)-1].SamplesUsed)
	}

	// The final event matches the non-streaming response for the same seed.
	resp, body := postJSON(t, ts.URL+"/query", QueryRequest{SQL: adaptiveServerSQL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("non-streaming = %d: %s", resp.StatusCode, body)
	}
	var plain QueryResponse
	if err := json.Unmarshal(body, &plain); err != nil {
		t.Fatal(err)
	}
	if *plain.Dist != *final.Dist {
		t.Fatalf("dist mismatch:\nstream = %+v\nplain  = %+v", *final.Dist, *plain.Dist)
	}
	if plain.Adaptive.SamplesUsed != final.Adaptive.SamplesUsed || plain.Adaptive.Rounds != final.Adaptive.Rounds {
		t.Fatalf("adaptive mismatch:\nstream = %+v\nplain  = %+v", *final.Adaptive, *plain.Adaptive)
	}
}

// TestServerStreamFixedN: stream=1 on a fixed MONTECARLO(n) statement
// emits progressive partials and a final result identical to the
// non-streaming run.
func TestServerStreamFixedN(t *testing.T) {
	s := New(testEngine(t), Options{MaxConcurrent: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sql := `SELECT SUM(val) AS totalLoss FROM Losses WITH RESULTDISTRIBUTION MONTECARLO(300)`
	events := postSSE(t, ts.URL+"/query?stream=1", QueryRequest{SQL: sql})
	var final *QueryResponse
	nProgress := 0
	for _, ev := range events {
		switch ev.name {
		case "progress":
			nProgress++
		case "result":
			var q QueryResponse
			if err := json.Unmarshal(ev.data, &q); err != nil {
				t.Fatal(err)
			}
			final = &q
		case "error":
			t.Fatalf("error event: %s", ev.data)
		}
	}
	if nProgress == 0 || final == nil {
		t.Fatalf("progress = %d, final = %v", nProgress, final)
	}
	if final.Dist == nil || final.Dist.N != 300 {
		t.Fatalf("final dist = %+v", final.Dist)
	}
	resp, body := postJSON(t, ts.URL+"/query", QueryRequest{SQL: sql})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("non-streaming = %d: %s", resp.StatusCode, body)
	}
	var plain QueryResponse
	if err := json.Unmarshal(body, &plain); err != nil {
		t.Fatal(err)
	}
	if *plain.Dist != *final.Dist {
		t.Fatalf("dist mismatch:\nstream = %+v\nplain  = %+v", *final.Dist, *plain.Dist)
	}
}

// TestServerStreamRejectsNonSelect: CREATE statements cannot stream.
func TestServerStreamRejectsNonSelect(t *testing.T) {
	s := New(testEngine(t), Options{MaxConcurrent: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := postJSON(t, ts.URL+"/query?stream=1", QueryRequest{
		SQL: `CREATE TABLE l2(CID, val) AS FOR EACH CID IN means WITH v AS Normal(VALUES(m, 1.0)) SELECT CID, v.* FROM v`,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
}

// TestServerClientDisconnectAborts: cancelling the request context aborts
// the running query server-side and the server keeps serving.
func TestServerClientDisconnectAborts(t *testing.T) {
	s := New(testEngine(t), Options{MaxConcurrent: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	b, _ := json.Marshal(QueryRequest{SQL: `SELECT SUM(val) AS totalLoss FROM Losses WITH RESULTDISTRIBUTION MONTECARLO(2000000)`})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	done := make(chan struct{})
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		close(done)
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("client did not return after cancel")
	}
	// The (single) query slot must free promptly: a follow-up query succeeds.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, body := postJSON(t, ts.URL+"/query", QueryRequest{SQL: mcSQL})
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server did not recover after disconnect: %d %s", resp.StatusCode, body)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
