// Package pq implements the disk-based priority queue the GibbsLooper uses
// to order Gibbs tuples by TS-seed handle (paper §7). Entries are (key,
// payload) pairs; the queue keeps a bounded in-memory heap and spills
// sorted runs to a temporary file when the bound is exceeded, merging runs
// with the heap on pop — "essentially merging Gibbs tuples in the
// disk-based priority queue with a sorted file containing all of the
// TS-seeds".
package pq

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
)

// Entry is one queued item: a sort key (TS-seed handle; the paper uses
// "infinity" = MaxKey to push fully-processed tuples to the tail) and an
// opaque payload (a tuple index).
type Entry struct {
	Key     uint64
	Payload uint64
}

// MaxKey is the "infinity" key from the paper's Appendix A.
const MaxKey = ^uint64(0)

// Queue is a min-priority queue of Entries with disk spilling. The zero
// value is not usable; call New. Queue is not safe for concurrent use.
type Queue struct {
	memLimit int
	mem      entryHeap
	runs     []*run
	spillDir string
	size     int
}

// New returns a queue that holds at most memLimit entries in memory,
// spilling sorted runs to files in dir ("" = os.TempDir()) beyond that.
// memLimit <= 0 selects a default of 1<<16 entries.
func New(memLimit int, dir string) *Queue {
	if memLimit <= 0 {
		memLimit = 1 << 16
	}
	return &Queue{memLimit: memLimit, spillDir: dir}
}

// Len returns the number of queued entries.
func (q *Queue) Len() int { return q.size }

// Push inserts an entry, spilling the in-memory heap to disk when full.
func (q *Queue) Push(e Entry) error {
	if q.mem.Len() >= q.memLimit {
		if err := q.spill(); err != nil {
			return err
		}
	}
	heap.Push(&q.mem, e)
	q.size++
	return nil
}

// Peek returns the minimum entry without removing it.
func (q *Queue) Peek() (Entry, bool) {
	if q.size == 0 {
		return Entry{}, false
	}
	best, ok := q.memMin()
	for _, r := range q.runs {
		if e, rok := r.peek(); rok && (!ok || less(e, best)) {
			best, ok = e, true
		}
	}
	return best, ok
}

// Pop removes and returns the minimum entry.
func (q *Queue) Pop() (Entry, error) {
	if q.size == 0 {
		return Entry{}, fmt.Errorf("pq: Pop on empty queue")
	}
	src := -1 // -1 = memory heap
	best, ok := q.memMin()
	for i, r := range q.runs {
		if e, rok := r.peek(); rok && (!ok || less(e, best)) {
			best, ok, src = e, true, i
		}
	}
	if !ok {
		return Entry{}, fmt.Errorf("pq: internal inconsistency, size %d but no entries", q.size)
	}
	if src == -1 {
		heap.Pop(&q.mem)
	} else {
		if err := q.runs[src].advance(); err != nil {
			return Entry{}, err
		}
	}
	q.size--
	q.compactRuns()
	return best, nil
}

// PopAllWithKey removes and returns every entry whose key equals the
// current minimum key; the looper processes all Gibbs tuples associated
// with one TS-seed at a time.
func (q *Queue) PopAllWithKey() (key uint64, payloads []uint64, err error) {
	first, err := q.Pop()
	if err != nil {
		return 0, nil, err
	}
	key = first.Key
	payloads = append(payloads, first.Payload)
	for {
		e, ok := q.Peek()
		if !ok || e.Key != key {
			return key, payloads, nil
		}
		if _, err := q.Pop(); err != nil {
			return 0, nil, err
		}
		payloads = append(payloads, e.Payload)
	}
}

// Drain empties the queue, returning all entries in ascending key order.
func (q *Queue) Drain() ([]Entry, error) {
	out := make([]Entry, 0, q.size)
	for q.size > 0 {
		e, err := q.Pop()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// Reset discards all entries and removes spill files.
func (q *Queue) Reset() {
	q.mem = q.mem[:0]
	for _, r := range q.runs {
		r.close()
	}
	q.runs = nil
	q.size = 0
}

// SpilledRuns reports how many disk runs currently back the queue; exposed
// for tests and instrumentation.
func (q *Queue) SpilledRuns() int { return len(q.runs) }

func (q *Queue) memMin() (Entry, bool) {
	if q.mem.Len() == 0 {
		return Entry{}, false
	}
	return q.mem[0], true
}

func (q *Queue) spill() error {
	entries := make([]Entry, len(q.mem))
	copy(entries, q.mem)
	sort.Slice(entries, func(i, j int) bool { return less(entries[i], entries[j]) })
	f, err := os.CreateTemp(q.spillDir, "mcdbr-pq-*.run")
	if err != nil {
		return fmt.Errorf("pq: create spill file: %w", err)
	}
	// Unlink immediately; the open descriptor keeps the data alive and the
	// file vanishes even if the process dies.
	name := f.Name()
	defer os.Remove(name)
	bw := bufio.NewWriter(f)
	for _, e := range entries {
		var buf [16]byte
		binary.LittleEndian.PutUint64(buf[0:8], e.Key)
		binary.LittleEndian.PutUint64(buf[8:16], e.Payload)
		if _, err := bw.Write(buf[:]); err != nil {
			f.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	r := &run{f: f, br: bufio.NewReader(f), remaining: len(entries)}
	if err := r.advance(); err != nil {
		return err
	}
	q.runs = append(q.runs, r)
	q.mem = q.mem[:0]
	return nil
}

func (q *Queue) compactRuns() {
	out := q.runs[:0]
	for _, r := range q.runs {
		if _, ok := r.peek(); ok {
			out = append(out, r)
		} else {
			r.close()
		}
	}
	q.runs = out
}

func less(a, b Entry) bool {
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.Payload < b.Payload
}

type entryHeap []Entry

func (h entryHeap) Len() int           { return len(h) }
func (h entryHeap) Less(i, j int) bool { return less(h[i], h[j]) }
func (h entryHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x any)        { *h = append(*h, x.(Entry)) }
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// run is one sorted spill file being consumed front to back.
type run struct {
	f         *os.File
	br        *bufio.Reader
	head      Entry
	valid     bool
	remaining int
}

func (r *run) peek() (Entry, bool) { return r.head, r.valid }

// advance loads the next entry into head (or marks the run exhausted).
func (r *run) advance() error {
	if r.remaining == 0 {
		r.valid = false
		return nil
	}
	var buf [16]byte
	if _, err := io.ReadFull(r.br, buf[:]); err != nil {
		return fmt.Errorf("pq: read spill run: %w", err)
	}
	r.head = Entry{Key: binary.LittleEndian.Uint64(buf[0:8]), Payload: binary.LittleEndian.Uint64(buf[8:16])}
	r.remaining--
	r.valid = true
	return nil
}

func (r *run) close() {
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
	r.valid = false
}
