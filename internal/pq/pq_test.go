package pq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPushPopOrdering(t *testing.T) {
	q := New(0, t.TempDir())
	keys := []uint64{5, 1, 9, 1, 7, MaxKey, 0}
	for i, k := range keys {
		if err := q.Push(Entry{Key: k, Payload: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len() != len(keys) {
		t.Fatalf("Len = %d", q.Len())
	}
	var got []uint64
	for q.Len() > 0 {
		e, err := q.Pop()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, e.Key)
	}
	want := append([]uint64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", got, want)
		}
	}
}

func TestPopEmpty(t *testing.T) {
	q := New(0, t.TempDir())
	if _, err := q.Pop(); err == nil {
		t.Fatal("Pop on empty must error")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty must report false")
	}
}

func TestSpillingMatchesSort(t *testing.T) {
	// Tiny memory limit forces many spill runs.
	q := New(8, t.TempDir())
	rng := rand.New(rand.NewSource(3))
	const n = 1000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(rng.Intn(100))
		if err := q.Push(Entry{Key: keys[i], Payload: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if q.SpilledRuns() == 0 {
		t.Fatal("expected disk spills with memLimit=8 and n=1000")
	}
	got, err := q.Drain()
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if len(got) != n {
		t.Fatalf("drained %d of %d", len(got), n)
	}
	for i := range got {
		if got[i].Key != keys[i] {
			t.Fatalf("position %d: key %d, want %d", i, got[i].Key, keys[i])
		}
	}
	if q.SpilledRuns() != 0 {
		t.Fatalf("%d runs remain after drain", q.SpilledRuns())
	}
}

func TestInterleavedPushPop(t *testing.T) {
	q := New(4, t.TempDir())
	rng := rand.New(rand.NewSource(9))
	var popped []uint64
	live := 0
	for i := 0; i < 500; i++ {
		if live > 0 && rng.Intn(3) == 0 {
			e, err := q.Pop()
			if err != nil {
				t.Fatal(err)
			}
			popped = append(popped, e.Key)
			live--
		} else {
			if err := q.Push(Entry{Key: uint64(rng.Intn(50)), Payload: uint64(i)}); err != nil {
				t.Fatal(err)
			}
			live++
		}
	}
	// Each pop must return a key <= every key still in the queue at that
	// moment; verify the weaker global invariant that draining the rest
	// yields keys >= the last popped key is NOT required (new smaller keys
	// may arrive later). Instead just check the drain is sorted.
	rest, err := q.Drain()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rest); i++ {
		if rest[i].Key < rest[i-1].Key {
			t.Fatal("drain not sorted")
		}
	}
	// 500 iterations split between pushes and pops: every push is either
	// popped in the loop or drained afterwards.
	pushes := 500 - len(popped)
	if len(popped)+len(rest) != pushes {
		t.Fatalf("lost entries: %d popped + %d drained != %d pushed", len(popped), len(rest), pushes)
	}
}

func TestPopAllWithKey(t *testing.T) {
	q := New(0, t.TempDir())
	entries := []Entry{{2, 10}, {1, 11}, {2, 12}, {1, 13}, {3, 14}, {1, 15}}
	for _, e := range entries {
		if err := q.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	key, payloads, err := q.PopAllWithKey()
	if err != nil {
		t.Fatal(err)
	}
	if key != 1 || len(payloads) != 3 {
		t.Fatalf("key=%d payloads=%v", key, payloads)
	}
	key, payloads, _ = q.PopAllWithKey()
	if key != 2 || len(payloads) != 2 {
		t.Fatalf("key=%d payloads=%v", key, payloads)
	}
	key, payloads, _ = q.PopAllWithKey()
	if key != 3 || len(payloads) != 1 {
		t.Fatalf("key=%d payloads=%v", key, payloads)
	}
	if q.Len() != 0 {
		t.Fatal("queue should be empty")
	}
}

func TestPopAllWithKeyAcrossSpills(t *testing.T) {
	q := New(4, t.TempDir())
	// 20 entries with key 7 interleaved with others, forcing spills.
	for i := 0; i < 20; i++ {
		if err := q.Push(Entry{Key: 7, Payload: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		if err := q.Push(Entry{Key: 9, Payload: uint64(100 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	key, payloads, err := q.PopAllWithKey()
	if err != nil {
		t.Fatal(err)
	}
	if key != 7 || len(payloads) != 20 {
		t.Fatalf("key=%d count=%d, want 7/20", key, len(payloads))
	}
}

func TestReset(t *testing.T) {
	q := New(2, t.TempDir())
	for i := 0; i < 10; i++ {
		if err := q.Push(Entry{Key: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	q.Reset()
	if q.Len() != 0 || q.SpilledRuns() != 0 {
		t.Fatalf("Reset left Len=%d runs=%d", q.Len(), q.SpilledRuns())
	}
	// Queue must be reusable after Reset.
	if err := q.Push(Entry{Key: 1}); err != nil {
		t.Fatal(err)
	}
	if e, err := q.Pop(); err != nil || e.Key != 1 {
		t.Fatalf("reuse after Reset failed: %v %v", e, err)
	}
}

func TestQueueEquivalentToSortProperty(t *testing.T) {
	f := func(keys []uint64, memLimitRaw uint8) bool {
		q := New(int(memLimitRaw%16)+1, "")
		defer q.Reset()
		for i, k := range keys {
			if err := q.Push(Entry{Key: k, Payload: uint64(i)}); err != nil {
				return false
			}
		}
		got, err := q.Drain()
		if err != nil {
			return false
		}
		want := append([]uint64(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Key != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPushPopInMemory(b *testing.B) {
	b.ReportAllocs()
	q := New(1<<20, b.TempDir())
	for i := 0; i < b.N; i++ {
		if err := q.Push(Entry{Key: uint64(i % 1000), Payload: uint64(i)}); err != nil {
			b.Fatal(err)
		}
		if i%2 == 1 {
			if _, err := q.Pop(); err != nil {
				b.Fatal(err)
			}
		}
	}
}
