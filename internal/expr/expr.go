// Package expr provides the expression language used in selection
// predicates, join conditions, projections, and aggregate arguments.
// Expressions are compiled against a schema once (resolving column names to
// positions) and then evaluated against rows with no per-call allocation —
// the Gibbs rejection sampler evaluates the final predicate and aggregate
// expression for every candidate value.
package expr

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// Expr is a node in the expression tree.
type Expr interface {
	// String renders the expression in SQL-ish syntax.
	String() string
	// walk visits this node and its children.
	walk(func(Expr))
}

// Col references a column by name. Resolution to a position happens at
// Compile time.
type Col struct {
	Name string
}

func (c *Col) String() string    { return c.Name }
func (c *Col) walk(f func(Expr)) { f(c) }

// Const is a literal value.
type Const struct {
	Val types.Value
}

func (c *Const) String() string {
	if c.Val.Kind() == types.KindString {
		return "'" + c.Val.Str() + "'"
	}
	return c.Val.String()
}
func (c *Const) walk(f func(Expr)) { f(c) }

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var opNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR",
}

// String returns the operator's SQL spelling.
func (op BinOp) String() string { return opNames[op] }

// Bin is a binary operation.
type Bin struct {
	Op          BinOp
	Left, Right Expr
}

func (b *Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", b.Left, b.Op, b.Right)
}
func (b *Bin) walk(f func(Expr)) { f(b); b.Left.walk(f); b.Right.walk(f) }

// Not negates a boolean expression.
type Not struct {
	Inner Expr
}

func (n *Not) String() string    { return "NOT " + n.Inner.String() }
func (n *Not) walk(f func(Expr)) { f(n); n.Inner.walk(f) }

// Neg is arithmetic negation.
type Neg struct {
	Inner Expr
}

func (n *Neg) String() string    { return "-" + n.Inner.String() }
func (n *Neg) walk(f func(Expr)) { f(n); n.Inner.walk(f) }

// Convenience constructors used by the planner and tests.

// C builds a column reference.
func C(name string) Expr { return &Col{Name: name} }

// I builds an integer literal.
func I(v int64) Expr { return &Const{Val: types.NewInt(v)} }

// F builds a float literal.
func F(v float64) Expr { return &Const{Val: types.NewFloat(v)} }

// S builds a string literal.
func S(v string) Expr { return &Const{Val: types.NewString(v)} }

// B builds a binary operation.
func B(op BinOp, l, r Expr) Expr { return &Bin{Op: op, Left: l, Right: r} }

// And conjoins expressions; And() returns a constant TRUE.
func And(es ...Expr) Expr {
	if len(es) == 0 {
		return &Const{Val: types.NewBool(true)}
	}
	out := es[0]
	for _, e := range es[1:] {
		out = &Bin{Op: OpAnd, Left: out, Right: e}
	}
	return out
}

// Columns returns the distinct column names referenced by e, in first-seen
// order.
func Columns(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	e.walk(func(n Expr) {
		if c, ok := n.(*Col); ok {
			key := strings.ToLower(c.Name)
			if !seen[key] {
				seen[key] = true
				out = append(out, c.Name)
			}
		}
	})
	return out
}

// RenameColumns returns a copy of e with every column name passed through
// f; the planner uses it to qualify unqualified references. Nodes without
// column references are shared, not copied.
func RenameColumns(e Expr, f func(string) string) Expr {
	switch n := e.(type) {
	case *Col:
		if renamed := f(n.Name); renamed != n.Name {
			return &Col{Name: renamed}
		}
		return n
	case *Bin:
		return &Bin{Op: n.Op, Left: RenameColumns(n.Left, f), Right: RenameColumns(n.Right, f)}
	case *Not:
		return &Not{Inner: RenameColumns(n.Inner, f)}
	case *Neg:
		return &Neg{Inner: RenameColumns(n.Inner, f)}
	default:
		return e
	}
}

// Compiled is an expression bound to a schema, ready for evaluation.
type Compiled struct {
	eval func(types.Row) types.Value
	src  Expr
}

// Compile resolves column references in e against schema. It returns an
// error naming any unresolvable column.
func Compile(e Expr, schema *types.Schema) (*Compiled, error) {
	fn, err := compileNode(e, schema)
	if err != nil {
		return nil, err
	}
	return &Compiled{eval: fn, src: e}, nil
}

// MustCompile is Compile but panics on error; for planner-generated
// expressions whose columns are known to exist.
func MustCompile(e Expr, schema *types.Schema) *Compiled {
	c, err := Compile(e, schema)
	if err != nil {
		panic(err)
	}
	return c
}

// Eval evaluates the expression against a row.
func (c *Compiled) Eval(row types.Row) types.Value { return c.eval(row) }

// EvalBool evaluates as a predicate: NULL and non-boolean results are
// false (SQL WHERE semantics).
func (c *Compiled) EvalBool(row types.Row) bool {
	v := c.eval(row)
	return v.Kind() == types.KindBool && v.Bool()
}

// Source returns the expression the Compiled was built from.
func (c *Compiled) Source() Expr { return c.src }

func compileNode(e Expr, schema *types.Schema) (func(types.Row) types.Value, error) {
	switch n := e.(type) {
	case *Const:
		v := n.Val
		return func(types.Row) types.Value { return v }, nil
	case *Col:
		idx := schema.Lookup(n.Name)
		if idx < 0 {
			return nil, fmt.Errorf("expr: column %q not found in schema %s", n.Name, schema)
		}
		return func(r types.Row) types.Value { return r[idx] }, nil
	case *Neg:
		inner, err := compileNode(n.Inner, schema)
		if err != nil {
			return nil, err
		}
		return func(r types.Row) types.Value {
			v := inner(r)
			switch v.Kind() {
			case types.KindInt:
				return types.NewInt(-v.Int())
			case types.KindFloat:
				return types.NewFloat(-v.Float())
			default:
				return types.Null
			}
		}, nil
	case *Not:
		inner, err := compileNode(n.Inner, schema)
		if err != nil {
			return nil, err
		}
		return func(r types.Row) types.Value {
			v := inner(r)
			if v.Kind() != types.KindBool {
				return types.Null
			}
			return types.NewBool(!v.Bool())
		}, nil
	case *Bin:
		l, err := compileNode(n.Left, schema)
		if err != nil {
			return nil, err
		}
		r, err := compileNode(n.Right, schema)
		if err != nil {
			return nil, err
		}
		return compileBin(n.Op, l, r)
	default:
		return nil, fmt.Errorf("expr: unknown node type %T", e)
	}
}

func compileBin(op BinOp, l, r func(types.Row) types.Value) (func(types.Row) types.Value, error) {
	switch op {
	case OpAdd, OpSub, OpMul, OpDiv:
		return func(row types.Row) types.Value {
			a, b := l(row), r(row)
			return arith(op, a, b)
		}, nil
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return func(row types.Row) types.Value {
			a, b := l(row), r(row)
			return compare(op, a, b)
		}, nil
	case OpAnd:
		return func(row types.Row) types.Value {
			a := l(row)
			if a.Kind() == types.KindBool && !a.Bool() {
				return types.NewBool(false)
			}
			b := r(row)
			if a.IsNull() || b.IsNull() {
				return types.Null
			}
			if a.Kind() != types.KindBool || b.Kind() != types.KindBool {
				return types.Null
			}
			return types.NewBool(a.Bool() && b.Bool())
		}, nil
	case OpOr:
		return func(row types.Row) types.Value {
			a := l(row)
			if a.Kind() == types.KindBool && a.Bool() {
				return types.NewBool(true)
			}
			b := r(row)
			if a.IsNull() || b.IsNull() {
				return types.Null
			}
			if a.Kind() != types.KindBool || b.Kind() != types.KindBool {
				return types.Null
			}
			return types.NewBool(a.Bool() || b.Bool())
		}, nil
	default:
		return nil, fmt.Errorf("expr: unknown operator %d", op)
	}
}

func arith(op BinOp, a, b types.Value) types.Value {
	if a.IsNull() || b.IsNull() {
		return types.Null
	}
	// INT op INT stays INT (except division, which promotes).
	if a.Kind() == types.KindInt && b.Kind() == types.KindInt && op != OpDiv {
		x, y := a.Int(), b.Int()
		switch op {
		case OpAdd:
			return types.NewInt(x + y)
		case OpSub:
			return types.NewInt(x - y)
		case OpMul:
			return types.NewInt(x * y)
		}
	}
	x, ok1 := a.AsFloat()
	y, ok2 := b.AsFloat()
	if !ok1 || !ok2 {
		return types.Null
	}
	switch op {
	case OpAdd:
		return types.NewFloat(x + y)
	case OpSub:
		return types.NewFloat(x - y)
	case OpMul:
		return types.NewFloat(x * y)
	case OpDiv:
		if y == 0 {
			return types.Null
		}
		return types.NewFloat(x / y)
	}
	return types.Null
}

func compare(op BinOp, a, b types.Value) types.Value {
	if a.IsNull() || b.IsNull() {
		return types.Null
	}
	// Mixed numeric/non-numeric comparisons other than equality are
	// meaningless; equality across kinds uses Value.Equal semantics.
	switch op {
	case OpEq:
		return types.NewBool(a.Equal(b))
	case OpNe:
		return types.NewBool(!a.Equal(b))
	}
	if (a.IsNumeric() != b.IsNumeric()) || (a.Kind() == types.KindString) != (b.Kind() == types.KindString) {
		return types.Null
	}
	c := a.Compare(b)
	switch op {
	case OpLt:
		return types.NewBool(c < 0)
	case OpLe:
		return types.NewBool(c <= 0)
	case OpGt:
		return types.NewBool(c > 0)
	case OpGe:
		return types.NewBool(c >= 0)
	}
	return types.Null
}

// SplitConjuncts flattens nested ANDs into a list of conjuncts.
func SplitConjuncts(e Expr) []Expr {
	if b, ok := e.(*Bin); ok && b.Op == OpAnd {
		return append(SplitConjuncts(b.Left), SplitConjuncts(b.Right)...)
	}
	return []Expr{e}
}

// EquiJoinSides inspects a conjunct of the form "a = b" where each side is a
// single column, returning the two column names. ok is false otherwise.
func EquiJoinSides(e Expr) (left, right string, ok bool) {
	b, isBin := e.(*Bin)
	if !isBin || b.Op != OpEq {
		return "", "", false
	}
	lc, lok := b.Left.(*Col)
	rc, rok := b.Right.(*Col)
	if !lok || !rok {
		return "", "", false
	}
	return lc.Name, rc.Name, true
}
