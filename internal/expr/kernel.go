// Vectorized kernel compilation. CompileKernel lowers an expression into
// typed column kernels: every node is statically typed from the schema's
// column kinds and evaluates over flat lanes ([]float64, []int64, []bool,
// []string) plus a per-node null mask, instead of the closure-tree
// interpreter's boxed types.Value calls. The batch executor gathers column
// vectors once per batch, then each operator runs as a tight loop over its
// operand lanes; predicates additionally get fused compare-and-filter
// kernels that emit a selection vector directly.
//
// Semantics are pinned to the interpreter bit-for-bit (differential tests
// and FuzzKernelVsInterpreter enforce this): NULL propagation, the
// asymmetric AND/OR short-circuits, INT op INT staying INT, division-by-
// zero yielding NULL, NaN ordering through Value.Compare, and cross-kind
// equality via Value.Equal are all reproduced exactly. Static typing is
// sound because gathering verifies every value against the declared
// column kind: KVec.Set/Fill return false on a mismatch and the caller
// falls back to the interpreter for that batch. Statically untypable
// subtrees (arith over strings, ordered compares across kinds, NOT of a
// non-boolean) lower to constant-NULL lanes, which is exactly the value
// the interpreter computes for them.
package expr

import (
	"fmt"

	"repro/internal/types"
)

// kop enumerates the typed kernel operations.
type kop uint8

const (
	kCol kop = iota
	kConstI
	kConstF
	kConstB
	kConstS
	kNull // statically-NULL result (all-null lane)
	kNegI
	kNegF
	kNot
	kIToF // int64 lane -> float64 lane (AsFloat semantics)
	kBToF // bool lane -> float64 lane (AsFloat semantics)
	kAddI
	kSubI
	kMulI
	kAddF
	kSubF
	kMulF
	kDivF
	kEqI
	kNeI
	kLtI
	kLeI
	kGtI
	kGeI
	kEqF
	kNeF
	kLtF
	kLeF
	kGtF
	kGeF
	kEqB
	kNeB
	kLtB
	kLeB
	kGtB
	kGeB
	kEqS
	kNeS
	kLtS
	kLeS
	kGtS
	kGeS
	kEqMis // equality across statically incompatible kinds: constant false
	kNeMis // inequality across statically incompatible kinds: constant true
	kAnd
	kOr
)

// KVec is one gathered input column of a Kernel: a typed lane matching the
// schema's declared kind plus a null mask. Callers fill it with Set/Fill
// between Begin and an Eval call; both return false when a value's runtime
// kind contradicts the declared column kind (the caller must then fall
// back to the interpreter for the whole batch — the kernel's static typing
// no longer describes the data).
type KVec struct {
	slot int
	kind types.Kind
	f    []float64
	i    []int64
	b    []bool
	s    []string
	null []bool
}

// Slot returns the schema slot this vector gathers.
func (c *KVec) Slot() int { return c.slot }

// Set writes row i's value.
func (c *KVec) Set(i int, v types.Value) bool {
	if v.IsNull() {
		c.null[i] = true
		return true
	}
	if v.Kind() != c.kind {
		return false
	}
	c.null[i] = false
	switch c.kind {
	case types.KindInt:
		c.i[i] = v.Int()
	case types.KindFloat:
		c.f[i] = v.Float()
	case types.KindBool:
		c.b[i] = v.Bool()
	case types.KindString:
		c.s[i] = v.Str()
	}
	return true
}

// Fill broadcasts one value to rows [0, n) — the gather for a column that
// is constant across the batch (e.g. a tuple's deterministic attributes
// while sweeping its replicate window).
func (c *KVec) Fill(n int, v types.Value) bool {
	if v.IsNull() {
		fillBool(c.null[:n], true)
		return true
	}
	if v.Kind() != c.kind {
		return false
	}
	fillBool(c.null[:n], false)
	switch c.kind {
	case types.KindInt:
		x := v.Int()
		for j := range c.i[:n] {
			c.i[j] = x
		}
	case types.KindFloat:
		x := v.Float()
		for j := range c.f[:n] {
			c.f[j] = x
		}
	case types.KindBool:
		x := v.Bool()
		for j := range c.b[:n] {
			c.b[j] = x
		}
	case types.KindString:
		x := v.Str()
		for j := range c.s[:n] {
			c.s[j] = x
		}
	}
	return true
}

func (c *KVec) grow(n int) {
	growBools(&c.null, n)
	switch c.kind {
	case types.KindInt:
		growInts(&c.i, n)
	case types.KindFloat:
		growFloats(&c.f, n)
	case types.KindBool:
		growBools(&c.b, n)
	case types.KindString:
		growStrings(&c.s, n)
	}
}

// knode is one typed operation in the lowered tree. Result lanes are
// allocated by Begin and reused across batches; kCol nodes alias their
// KVec's lanes instead of copying.
type knode struct {
	op   kop
	kind types.Kind // static result kind; KindNull for kNull
	a, b *knode
	col  *KVec

	// Constant payloads.
	ci int64
	cf float64
	cb bool
	cs string

	// Result lanes.
	f    []float64
	i    []int64
	bl   []bool
	s    []string
	null []bool
}

// Kernel is an expression lowered to typed column kernels, bound to a
// schema. Use per evaluation site (it owns scratch lanes; not safe for
// concurrent use):
//
//	k, err := expr.CompileKernel(pred, schema)
//	k.Begin(n)
//	for _, c := range k.Cols() { ... c.Set(i, v) / c.Fill(n, v) ... }
//	sel = k.EvalSel(sel[:0])
type Kernel struct {
	root  *knode
	nodes []*knode // post-order; root is last
	cols  []*KVec
	n     int
}

// CompileKernel lowers e against schema. An error means the expression
// cannot be kernel-lowered (unresolvable column, unknown node type) and
// the caller must keep the interpreter.
func CompileKernel(e Expr, schema *types.Schema) (*Kernel, error) {
	k := &Kernel{}
	bySlot := map[int]*KVec{}
	root, err := k.lower(e, schema, bySlot)
	if err != nil {
		return nil, err
	}
	k.root = root
	return k, nil
}

// Kernel lowers the compiled expression's source against schema — the
// vectorized twin of the Compiled the caller already holds.
func (c *Compiled) Kernel(schema *types.Schema) (*Kernel, error) {
	return CompileKernel(c.src, schema)
}

// Cols returns the gathered input columns, one per referenced schema
// slot (deduplicated).
func (k *Kernel) Cols() []*KVec { return k.cols }

// Kind returns the expression's static result kind; KindNull means the
// result is NULL in every row.
func (k *Kernel) Kind() types.Kind { return k.root.kind }

func (k *Kernel) add(nd *knode) *knode {
	k.nodes = append(k.nodes, nd)
	return nd
}

func (k *Kernel) nullNode() *knode {
	return k.add(&knode{op: kNull, kind: types.KindNull})
}

func isNumericKind(kd types.Kind) bool {
	return kd == types.KindInt || kd == types.KindFloat
}

// toFloat inserts an int/bool -> float conversion (AsFloat semantics);
// identity on float nodes.
func (k *Kernel) toFloat(nd *knode) *knode {
	switch nd.kind {
	case types.KindFloat:
		return nd
	case types.KindInt:
		return k.add(&knode{op: kIToF, kind: types.KindFloat, a: nd})
	default: // KindBool
		return k.add(&knode{op: kBToF, kind: types.KindFloat, a: nd})
	}
}

// asBool coerces an And/Or operand: a statically non-boolean operand
// behaves exactly like an all-NULL boolean lane under the interpreter's
// AND/OR rules (see the differential tests), so it lowers to kNull. The
// operand subtree was already compiled, keeping its columns registered —
// the gather-time kind check still guards the whole expression.
func (k *Kernel) asBool(nd *knode) *knode {
	if nd.kind == types.KindBool {
		return nd
	}
	return k.nullNode()
}

func (k *Kernel) lower(e Expr, schema *types.Schema, bySlot map[int]*KVec) (*knode, error) {
	switch n := e.(type) {
	case *Const:
		switch n.Val.Kind() {
		case types.KindNull:
			return k.nullNode(), nil
		case types.KindInt:
			return k.add(&knode{op: kConstI, kind: types.KindInt, ci: n.Val.Int()}), nil
		case types.KindFloat:
			return k.add(&knode{op: kConstF, kind: types.KindFloat, cf: n.Val.Float()}), nil
		case types.KindBool:
			return k.add(&knode{op: kConstB, kind: types.KindBool, cb: n.Val.Bool()}), nil
		case types.KindString:
			return k.add(&knode{op: kConstS, kind: types.KindString, cs: n.Val.Str()}), nil
		default:
			return nil, fmt.Errorf("expr: kernel: unknown constant kind %v", n.Val.Kind())
		}
	case *Col:
		idx := schema.Lookup(n.Name)
		if idx < 0 {
			return nil, fmt.Errorf("expr: column %q not found in schema %s", n.Name, schema)
		}
		col := bySlot[idx]
		if col == nil {
			col = &KVec{slot: idx, kind: schema.Col(idx).Kind}
			bySlot[idx] = col
			k.cols = append(k.cols, col)
		}
		if col.kind == types.KindNull {
			// A declared-NULL column holds only NULLs (gathering enforces
			// it), so references are statically NULL. The column stays
			// registered: a non-NULL runtime value still forces fallback.
			return k.nullNode(), nil
		}
		return k.add(&knode{op: kCol, kind: col.kind, col: col}), nil
	case *Neg:
		a, err := k.lower(n.Inner, schema, bySlot)
		if err != nil {
			return nil, err
		}
		switch a.kind {
		case types.KindInt:
			return k.add(&knode{op: kNegI, kind: types.KindInt, a: a}), nil
		case types.KindFloat:
			return k.add(&knode{op: kNegF, kind: types.KindFloat, a: a}), nil
		default:
			return k.nullNode(), nil
		}
	case *Not:
		a, err := k.lower(n.Inner, schema, bySlot)
		if err != nil {
			return nil, err
		}
		if a.kind != types.KindBool {
			return k.nullNode(), nil
		}
		return k.add(&knode{op: kNot, kind: types.KindBool, a: a}), nil
	case *Bin:
		a, err := k.lower(n.Left, schema, bySlot)
		if err != nil {
			return nil, err
		}
		b, err := k.lower(n.Right, schema, bySlot)
		if err != nil {
			return nil, err
		}
		return k.lowerBin(n.Op, a, b)
	default:
		return nil, fmt.Errorf("expr: kernel: unknown node type %T", e)
	}
}

func (k *Kernel) lowerBin(op BinOp, a, b *knode) (*knode, error) {
	la, lb := a.kind, b.kind
	switch op {
	case OpAdd, OpSub, OpMul, OpDiv:
		if la == types.KindNull || lb == types.KindNull ||
			la == types.KindString || lb == types.KindString {
			// NULL operands propagate; string operands fail AsFloat — the
			// interpreter yields NULL either way.
			return k.nullNode(), nil
		}
		if la == types.KindInt && lb == types.KindInt && op != OpDiv {
			return k.add(&knode{op: kAddI + kop(op-OpAdd), kind: types.KindInt, a: a, b: b}), nil
		}
		return k.add(&knode{op: kAddF + kop(op-OpAdd), kind: types.KindFloat, a: k.toFloat(a), b: k.toFloat(b)}), nil
	case OpEq, OpNe:
		switch {
		case la == types.KindNull || lb == types.KindNull:
			return k.nullNode(), nil
		case la == lb:
			base := map[types.Kind]kop{
				types.KindInt: kEqI, types.KindFloat: kEqF,
				types.KindBool: kEqB, types.KindString: kEqS,
			}[la]
			if op == OpNe {
				base++
			}
			return k.add(&knode{op: base, kind: types.KindBool, a: a, b: b}), nil
		case isNumericKind(la) && isNumericKind(lb):
			base := kEqF
			if op == OpNe {
				base = kNeF
			}
			return k.add(&knode{op: base, kind: types.KindBool, a: k.toFloat(a), b: k.toFloat(b)}), nil
		default:
			// Statically incompatible kinds: Value.Equal is false for every
			// non-NULL pair; only the null masks matter.
			base := kEqMis
			if op == OpNe {
				base = kNeMis
			}
			return k.add(&knode{op: base, kind: types.KindBool, a: a, b: b}), nil
		}
	case OpLt, OpLe, OpGt, OpGe:
		rel := kop(op - OpLt) // 0..3 over Lt,Le,Gt,Ge
		switch {
		case la == types.KindNull || lb == types.KindNull:
			return k.nullNode(), nil
		case la == types.KindInt && lb == types.KindInt:
			return k.add(&knode{op: kLtI + rel, kind: types.KindBool, a: a, b: b}), nil
		case isNumericKind(la) && isNumericKind(lb):
			return k.add(&knode{op: kLtF + rel, kind: types.KindBool, a: k.toFloat(a), b: k.toFloat(b)}), nil
		case la == types.KindBool && lb == types.KindBool:
			return k.add(&knode{op: kLtB + rel, kind: types.KindBool, a: a, b: b}), nil
		case la == types.KindString && lb == types.KindString:
			return k.add(&knode{op: kLtS + rel, kind: types.KindBool, a: a, b: b}), nil
		default:
			// Ordered compares across numeric/non-numeric or string/non-
			// string kinds are NULL in the interpreter.
			return k.nullNode(), nil
		}
	case OpAnd:
		return k.add(&knode{op: kAnd, kind: types.KindBool, a: k.asBool(a), b: k.asBool(b)}), nil
	case OpOr:
		return k.add(&knode{op: kOr, kind: types.KindBool, a: k.asBool(a), b: k.asBool(b)}), nil
	default:
		return nil, fmt.Errorf("expr: kernel: unknown operator %d", op)
	}
}

// Begin prepares the kernel for a batch of n rows: lanes are grown (never
// shrunk — they are reused across batches) and constant lanes refilled.
// Callers gather the Cols() next, then call an Eval method.
func (k *Kernel) Begin(n int) {
	k.n = n
	for _, c := range k.cols {
		c.grow(n)
	}
	for _, nd := range k.nodes {
		switch nd.op {
		case kCol:
			// Alias the gathered column's lanes; no copy.
			nd.f, nd.i, nd.bl, nd.s, nd.null = nd.col.f, nd.col.i, nd.col.b, nd.col.s, nd.col.null
		case kConstI:
			growInts(&nd.i, n)
			growBools(&nd.null, n)
			for j := range nd.i[:n] {
				nd.i[j] = nd.ci
			}
			fillBool(nd.null[:n], false)
		case kConstF:
			growFloats(&nd.f, n)
			growBools(&nd.null, n)
			for j := range nd.f[:n] {
				nd.f[j] = nd.cf
			}
			fillBool(nd.null[:n], false)
		case kConstB:
			growBools(&nd.bl, n)
			growBools(&nd.null, n)
			fillBool(nd.bl[:n], nd.cb)
			fillBool(nd.null[:n], false)
		case kConstS:
			growStrings(&nd.s, n)
			growBools(&nd.null, n)
			for j := range nd.s[:n] {
				nd.s[j] = nd.cs
			}
			fillBool(nd.null[:n], false)
		case kNull:
			// All-null lane; the bool lane exists so AND/OR operand reads
			// stay in-bounds (its values are never observed).
			growBools(&nd.bl, n)
			growBools(&nd.null, n)
			fillBool(nd.null[:n], true)
		default:
			growBools(&nd.null, n)
			switch nd.kind {
			case types.KindInt:
				growInts(&nd.i, n)
			case types.KindFloat:
				growFloats(&nd.f, n)
			case types.KindBool:
				growBools(&nd.bl, n)
			case types.KindString:
				growStrings(&nd.s, n)
			}
		}
	}
}

// run evaluates the listed nodes (post-order prefix of k.nodes) over rows
// [0, k.n).
func (k *Kernel) run(nodes []*knode) {
	n := k.n
	for _, nd := range nodes {
		a, b := nd.a, nd.b
		switch nd.op {
		case kCol, kConstI, kConstF, kConstB, kConstS, kNull:
			// Ready since Begin / gather.
		case kNegI:
			for j := 0; j < n; j++ {
				nd.i[j] = -a.i[j]
			}
			copy(nd.null[:n], a.null[:n])
		case kNegF:
			for j := 0; j < n; j++ {
				nd.f[j] = -a.f[j]
			}
			copy(nd.null[:n], a.null[:n])
		case kNot:
			for j := 0; j < n; j++ {
				nd.bl[j] = !a.bl[j]
			}
			copy(nd.null[:n], a.null[:n])
		case kIToF:
			for j := 0; j < n; j++ {
				nd.f[j] = float64(a.i[j])
			}
			copy(nd.null[:n], a.null[:n])
		case kBToF:
			for j := 0; j < n; j++ {
				if a.bl[j] {
					nd.f[j] = 1
				} else {
					nd.f[j] = 0
				}
			}
			copy(nd.null[:n], a.null[:n])
		case kAddI:
			for j := 0; j < n; j++ {
				nd.i[j] = a.i[j] + b.i[j]
				nd.null[j] = a.null[j] || b.null[j]
			}
		case kSubI:
			for j := 0; j < n; j++ {
				nd.i[j] = a.i[j] - b.i[j]
				nd.null[j] = a.null[j] || b.null[j]
			}
		case kMulI:
			for j := 0; j < n; j++ {
				nd.i[j] = a.i[j] * b.i[j]
				nd.null[j] = a.null[j] || b.null[j]
			}
		case kAddF:
			for j := 0; j < n; j++ {
				nd.f[j] = a.f[j] + b.f[j]
				nd.null[j] = a.null[j] || b.null[j]
			}
		case kSubF:
			for j := 0; j < n; j++ {
				nd.f[j] = a.f[j] - b.f[j]
				nd.null[j] = a.null[j] || b.null[j]
			}
		case kMulF:
			for j := 0; j < n; j++ {
				nd.f[j] = a.f[j] * b.f[j]
				nd.null[j] = a.null[j] || b.null[j]
			}
		case kDivF:
			for j := 0; j < n; j++ {
				y := b.f[j]
				if y == 0 {
					nd.null[j] = true
					continue
				}
				nd.f[j] = a.f[j] / y
				nd.null[j] = a.null[j] || b.null[j]
			}
		case kEqI:
			for j := 0; j < n; j++ {
				nd.bl[j] = a.i[j] == b.i[j]
				nd.null[j] = a.null[j] || b.null[j]
			}
		case kNeI:
			for j := 0; j < n; j++ {
				nd.bl[j] = a.i[j] != b.i[j]
				nd.null[j] = a.null[j] || b.null[j]
			}
		case kLtI:
			for j := 0; j < n; j++ {
				nd.bl[j] = a.i[j] < b.i[j]
				nd.null[j] = a.null[j] || b.null[j]
			}
		case kLeI:
			for j := 0; j < n; j++ {
				nd.bl[j] = a.i[j] <= b.i[j]
				nd.null[j] = a.null[j] || b.null[j]
			}
		case kGtI:
			for j := 0; j < n; j++ {
				nd.bl[j] = a.i[j] > b.i[j]
				nd.null[j] = a.null[j] || b.null[j]
			}
		case kGeI:
			for j := 0; j < n; j++ {
				nd.bl[j] = a.i[j] >= b.i[j]
				nd.null[j] = a.null[j] || b.null[j]
			}
		case kEqF:
			for j := 0; j < n; j++ {
				nd.bl[j] = a.f[j] == b.f[j]
				nd.null[j] = a.null[j] || b.null[j]
			}
		case kNeF:
			for j := 0; j < n; j++ {
				nd.bl[j] = a.f[j] != b.f[j]
				nd.null[j] = a.null[j] || b.null[j]
			}
		// The ordered float forms mirror Value.Compare, which returns 0
		// when neither side is less — so NaN pairs satisfy <= and >=.
		case kLtF:
			for j := 0; j < n; j++ {
				nd.bl[j] = a.f[j] < b.f[j]
				nd.null[j] = a.null[j] || b.null[j]
			}
		case kLeF:
			for j := 0; j < n; j++ {
				nd.bl[j] = !(a.f[j] > b.f[j])
				nd.null[j] = a.null[j] || b.null[j]
			}
		case kGtF:
			for j := 0; j < n; j++ {
				nd.bl[j] = a.f[j] > b.f[j]
				nd.null[j] = a.null[j] || b.null[j]
			}
		case kGeF:
			for j := 0; j < n; j++ {
				nd.bl[j] = !(a.f[j] < b.f[j])
				nd.null[j] = a.null[j] || b.null[j]
			}
		case kEqB:
			for j := 0; j < n; j++ {
				nd.bl[j] = a.bl[j] == b.bl[j]
				nd.null[j] = a.null[j] || b.null[j]
			}
		case kNeB:
			for j := 0; j < n; j++ {
				nd.bl[j] = a.bl[j] != b.bl[j]
				nd.null[j] = a.null[j] || b.null[j]
			}
		case kLtB: // false < true (Value.Compare on the bool payload)
			for j := 0; j < n; j++ {
				nd.bl[j] = !a.bl[j] && b.bl[j]
				nd.null[j] = a.null[j] || b.null[j]
			}
		case kLeB:
			for j := 0; j < n; j++ {
				nd.bl[j] = !a.bl[j] || b.bl[j]
				nd.null[j] = a.null[j] || b.null[j]
			}
		case kGtB:
			for j := 0; j < n; j++ {
				nd.bl[j] = a.bl[j] && !b.bl[j]
				nd.null[j] = a.null[j] || b.null[j]
			}
		case kGeB:
			for j := 0; j < n; j++ {
				nd.bl[j] = a.bl[j] || !b.bl[j]
				nd.null[j] = a.null[j] || b.null[j]
			}
		case kEqS:
			for j := 0; j < n; j++ {
				nd.bl[j] = a.s[j] == b.s[j]
				nd.null[j] = a.null[j] || b.null[j]
			}
		case kNeS:
			for j := 0; j < n; j++ {
				nd.bl[j] = a.s[j] != b.s[j]
				nd.null[j] = a.null[j] || b.null[j]
			}
		case kLtS:
			for j := 0; j < n; j++ {
				nd.bl[j] = a.s[j] < b.s[j]
				nd.null[j] = a.null[j] || b.null[j]
			}
		case kLeS:
			for j := 0; j < n; j++ {
				nd.bl[j] = a.s[j] <= b.s[j]
				nd.null[j] = a.null[j] || b.null[j]
			}
		case kGtS:
			for j := 0; j < n; j++ {
				nd.bl[j] = a.s[j] > b.s[j]
				nd.null[j] = a.null[j] || b.null[j]
			}
		case kGeS:
			for j := 0; j < n; j++ {
				nd.bl[j] = a.s[j] >= b.s[j]
				nd.null[j] = a.null[j] || b.null[j]
			}
		case kEqMis:
			for j := 0; j < n; j++ {
				nd.bl[j] = false
				nd.null[j] = a.null[j] || b.null[j]
			}
		case kNeMis:
			for j := 0; j < n; j++ {
				nd.bl[j] = true
				nd.null[j] = a.null[j] || b.null[j]
			}
		case kAnd:
			// The interpreter's asymmetric AND: a non-null false left
			// operand short-circuits to false before any null check.
			for j := 0; j < n; j++ {
				switch {
				case !a.null[j] && !a.bl[j]:
					nd.bl[j], nd.null[j] = false, false
				case a.null[j] || b.null[j]:
					nd.null[j] = true
				default:
					nd.bl[j], nd.null[j] = a.bl[j] && b.bl[j], false
				}
			}
		case kOr:
			for j := 0; j < n; j++ {
				switch {
				case !a.null[j] && a.bl[j]:
					nd.bl[j], nd.null[j] = true, false
				case a.null[j] || b.null[j]:
					nd.null[j] = true
				default:
					nd.bl[j], nd.null[j] = a.bl[j] || b.bl[j], false
				}
			}
		}
	}
}

// EvalMask evaluates the expression as a predicate over rows [0, n):
// dst[i] is true iff the row's value is a non-NULL boolean true —
// Compiled.EvalBool's NULL-as-false WHERE semantics. dst must have at
// least n elements.
func (k *Kernel) EvalMask(dst []bool) {
	k.run(k.nodes)
	r := k.root
	if r.kind != types.KindBool {
		fillBool(dst[:k.n], false)
		return
	}
	for j := 0; j < k.n; j++ {
		dst[j] = r.bl[j] && !r.null[j]
	}
}

// EvalSel appends to sel the indexes of rows [0, n) passing the predicate
// (EvalBool semantics) and returns the extended slice — the fused
// compare-and-filter path: when the root is a comparison its operands are
// compared and filtered in one loop, with no intermediate boolean lane.
func (k *Kernel) EvalSel(sel []int) []int {
	r := k.root
	n := k.n
	a, b := r.a, r.b
	switch r.op {
	case kLtI, kLeI, kGtI, kGeI, kEqI, kNeI, kLtF, kLeF, kGtF, kGeF, kEqF, kNeF:
		k.run(k.nodes[:len(k.nodes)-1])
	default:
		k.run(k.nodes)
		if r.kind != types.KindBool {
			return sel
		}
		for j := 0; j < n; j++ {
			if r.bl[j] && !r.null[j] {
				sel = append(sel, j)
			}
		}
		return sel
	}
	switch r.op {
	case kLtI:
		for j := 0; j < n; j++ {
			if a.i[j] < b.i[j] && !(a.null[j] || b.null[j]) {
				sel = append(sel, j)
			}
		}
	case kLeI:
		for j := 0; j < n; j++ {
			if a.i[j] <= b.i[j] && !(a.null[j] || b.null[j]) {
				sel = append(sel, j)
			}
		}
	case kGtI:
		for j := 0; j < n; j++ {
			if a.i[j] > b.i[j] && !(a.null[j] || b.null[j]) {
				sel = append(sel, j)
			}
		}
	case kGeI:
		for j := 0; j < n; j++ {
			if a.i[j] >= b.i[j] && !(a.null[j] || b.null[j]) {
				sel = append(sel, j)
			}
		}
	case kEqI:
		for j := 0; j < n; j++ {
			if a.i[j] == b.i[j] && !(a.null[j] || b.null[j]) {
				sel = append(sel, j)
			}
		}
	case kNeI:
		for j := 0; j < n; j++ {
			if a.i[j] != b.i[j] && !(a.null[j] || b.null[j]) {
				sel = append(sel, j)
			}
		}
	case kLtF:
		for j := 0; j < n; j++ {
			if a.f[j] < b.f[j] && !(a.null[j] || b.null[j]) {
				sel = append(sel, j)
			}
		}
	case kLeF:
		for j := 0; j < n; j++ {
			if !(a.f[j] > b.f[j]) && !(a.null[j] || b.null[j]) {
				sel = append(sel, j)
			}
		}
	case kGtF:
		for j := 0; j < n; j++ {
			if a.f[j] > b.f[j] && !(a.null[j] || b.null[j]) {
				sel = append(sel, j)
			}
		}
	case kGeF:
		for j := 0; j < n; j++ {
			if !(a.f[j] < b.f[j]) && !(a.null[j] || b.null[j]) {
				sel = append(sel, j)
			}
		}
	case kEqF:
		for j := 0; j < n; j++ {
			if a.f[j] == b.f[j] && !(a.null[j] || b.null[j]) {
				sel = append(sel, j)
			}
		}
	case kNeF:
		for j := 0; j < n; j++ {
			if a.f[j] != b.f[j] && !(a.null[j] || b.null[j]) {
				sel = append(sel, j)
			}
		}
	}
	return sel
}

// EvalNumeric writes the expression's value over rows [0, n) under
// aggregate-input semantics: dst[i] is the float64 value (AsFloat — ints
// and bools convert, exactly as AggSpec.Contribution sees them) and
// null[i] marks rows whose value is NULL (the aggregate skips them). It
// returns false — writing nothing — when the static result kind is
// string, which the interpreter rejects with an error: callers must fall
// back so the error surfaces identically. Both slices need at least n
// elements.
func (k *Kernel) EvalNumeric(dst []float64, null []bool) bool {
	r := k.root
	switch r.kind {
	case types.KindFloat, types.KindInt, types.KindBool, types.KindNull:
	default:
		return false
	}
	k.run(k.nodes)
	n := k.n
	switch r.kind {
	case types.KindFloat:
		copy(dst[:n], r.f[:n])
		copy(null[:n], r.null[:n])
	case types.KindInt:
		for j := 0; j < n; j++ {
			dst[j] = float64(r.i[j])
		}
		copy(null[:n], r.null[:n])
	case types.KindBool:
		for j := 0; j < n; j++ {
			if r.bl[j] {
				dst[j] = 1
			} else {
				dst[j] = 0
			}
		}
		copy(null[:n], r.null[:n])
	case types.KindNull:
		fillBool(null[:n], true)
	}
	return true
}

func growFloats(s *[]float64, n int) {
	if cap(*s) < n {
		*s = make([]float64, n)
		return
	}
	*s = (*s)[:n]
}

func growInts(s *[]int64, n int) {
	if cap(*s) < n {
		*s = make([]int64, n)
		return
	}
	*s = (*s)[:n]
}

func growBools(s *[]bool, n int) {
	if cap(*s) < n {
		*s = make([]bool, n)
		return
	}
	*s = (*s)[:n]
}

func growStrings(s *[]string, n int) {
	if cap(*s) < n {
		*s = make([]string, n)
		return
	}
	*s = (*s)[:n]
}

func fillBool(s []bool, v bool) {
	for i := range s {
		s[i] = v
	}
}
