package expr_test

import (
	"math"
	"testing"

	"repro/internal/expr"
	"repro/internal/sqlish"
	"repro/internal/types"
)

// fuzzKernelSeeds mirrors the parser fuzz corpus's expression-bearing
// statements (internal/sqlish/fuzz_test.go): WHERE/HAVING clauses and
// aggregate arguments parsed from them seed the differential search.
var fuzzKernelSeeds = []string{
	"SELECT SUM(val) FROM Losses WHERE CID < 10090 WITH RESULTDISTRIBUTION MONTECARLO(256)",
	"SELECT SUM(l.val) AS loss FROM Losses AS l WHERE l.CID < 10050 AND l.val > 0.5 WITH RESULTDISTRIBUTION MONTECARLO(64)",
	"SELECT AVG(e.sal / d.cnt) FROM emp AS e, dept AS d WHERE e.dno = d.dno WITH RESULTDISTRIBUTION MONTECARLO(128)",
	"SELECT COUNT(*) FROM t WHERE NOT (a = b) OR c <= 1.5",
	"SELECT SUM(x + y * 2) FROM t WHERE x <> 'a' GROUP BY g HAVING SUM(x + y * 2) > 10",
	"SELECT SUM(a - b) FROM t WHERE (a / b) >= 0 AND (a < 1 OR b > 2)",
}

// fuzzRNG is a splitmix64, so the fuzzer's (src, seed) inputs map
// deterministically to schemas, rows, and generated expressions.
type fuzzRNG uint64

func (r *fuzzRNG) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *fuzzRNG) intn(n int) int { return int(r.next() % uint64(n)) }

var fuzzKinds = []types.Kind{
	types.KindInt, types.KindFloat, types.KindBool, types.KindString, types.KindNull,
}

// fuzzValue draws a value of the given kind (or NULL) with the edge cases
// over-represented.
func fuzzValue(r *fuzzRNG, kind types.Kind) types.Value {
	if r.intn(5) == 0 {
		return types.Null
	}
	switch kind {
	case types.KindInt:
		switch r.intn(4) {
		case 0:
			return types.NewInt(int64(r.intn(7)) - 3)
		case 1:
			return types.NewInt(math.MaxInt64 - int64(r.intn(3)))
		case 2:
			return types.NewInt(math.MinInt64 + int64(r.intn(3)))
		default:
			return types.NewInt(int64(r.next()))
		}
	case types.KindFloat:
		switch r.intn(6) {
		case 0:
			return types.NewFloat(0)
		case 1:
			return types.NewFloat(math.Copysign(0, -1))
		case 2:
			return types.NewFloat(math.NaN())
		case 3:
			return types.NewFloat(math.Inf(1 - 2*r.intn(2)))
		default:
			return types.NewFloat((float64(r.intn(2001)) - 1000) / 8)
		}
	case types.KindBool:
		return types.NewBool(r.intn(2) == 0)
	case types.KindString:
		return types.NewString([]string{"", "a", "b", "ab", "z"}[r.intn(5)])
	default:
		return types.Null
	}
}

// fuzzExpr generates a random expression over cols, biased toward
// comparisons and boolean combinators so predicates dominate.
func fuzzExpr(r *fuzzRNG, cols []types.Column, depth int) expr.Expr {
	if depth <= 0 || r.intn(4) == 0 {
		if r.intn(3) == 0 {
			return &expr.Const{Val: fuzzValue(r, fuzzKinds[r.intn(len(fuzzKinds))])}
		}
		return expr.C(cols[r.intn(len(cols))].Name)
	}
	switch r.intn(14) {
	case 0:
		return &expr.Not{Inner: fuzzExpr(r, cols, depth-1)}
	case 1:
		return &expr.Neg{Inner: fuzzExpr(r, cols, depth-1)}
	default:
		ops := []expr.BinOp{
			expr.OpAdd, expr.OpSub, expr.OpMul, expr.OpDiv,
			expr.OpEq, expr.OpNe, expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe,
			expr.OpAnd, expr.OpOr,
		}
		return expr.B(ops[r.intn(len(ops))], fuzzExpr(r, cols, depth-1), fuzzExpr(r, cols, depth-1))
	}
}

// fuzzCheck is the non-fatal differential oracle: kernel EvalMask/EvalSel/
// EvalNumeric against interpreter EvalBool/Eval on random rows.
func fuzzCheck(t *testing.T, e expr.Expr, schema *types.Schema, rows []types.Row) {
	t.Helper()
	c, err := expr.Compile(e, schema)
	if err != nil {
		return // interpreter rejects it too; nothing to compare
	}
	k, err := expr.CompileKernel(e, schema)
	if err != nil {
		t.Errorf("CompileKernel(%s) failed (%v) where Compile succeeded", e, err)
		return
	}
	n := len(rows)
	k.Begin(n)
	for _, col := range k.Cols() {
		for i, row := range rows {
			if !col.Set(i, row[col.Slot()]) {
				return // schema/value mismatch: fallback contract, not comparable
			}
		}
	}
	mask := make([]bool, n)
	k.EvalMask(mask)
	sel := k.EvalSel(nil)
	selAt := make(map[int]bool, len(sel))
	for _, i := range sel {
		selAt[i] = true
	}
	dst := make([]float64, n)
	nulls := make([]bool, n)
	numericOK := k.EvalNumeric(dst, nulls)
	for i, row := range rows {
		want := c.EvalBool(row)
		if mask[i] != want {
			t.Errorf("%s: row %d: kernel mask %v, interpreter EvalBool %v (NULL-as-false)", e, i, mask[i], want)
		}
		if selAt[i] != want {
			t.Errorf("%s: row %d: kernel selection %v, interpreter %v", e, i, selAt[i], want)
		}
		v := c.Eval(row)
		switch f, numeric := v.AsFloat(); {
		case v.IsNull():
			if numericOK && !nulls[i] {
				t.Errorf("%s: row %d: interpreter NULL, kernel %v", e, i, dst[i])
			}
		case !numeric:
			if numericOK {
				t.Errorf("%s: row %d: interpreter %s (non-numeric), kernel claimed numeric", e, i, v.Kind())
			}
		case !numericOK:
			t.Errorf("%s: row %d: kernel refused numeric eval of %v", e, i, f)
		case nulls[i]:
			t.Errorf("%s: row %d: kernel NULL, interpreter %v", e, i, f)
		case math.Float64bits(dst[i]) != math.Float64bits(f) && !(math.IsNaN(dst[i]) && math.IsNaN(f)):
			t.Errorf("%s: row %d: kernel %v, interpreter %v (bit mismatch)", e, i, dst[i], f)
		}
	}
}

// FuzzKernelVsInterpreter differentially fuzzes the vectorized kernels
// against the closure-tree interpreter: expressions come from parsing the
// fuzzed SQL (WHERE, HAVING, aggregate arguments) and from a seeded
// random expression generator; schemas and rows are drawn from the seed.
// Any divergence — including NULL-as-false predicate semantics and the
// bit pattern of numeric results — is a failure.
func FuzzKernelVsInterpreter(f *testing.F) {
	for i, src := range fuzzKernelSeeds {
		f.Add(src, uint64(i)*1469598103934665603)
	}
	f.Fuzz(func(t *testing.T, src string, seed uint64) {
		r := fuzzRNG(seed)
		// Random schema: 3..8 columns named c0..c7 with random kinds.
		nCols := 3 + r.intn(6)
		cols := make([]types.Column, nCols)
		for i := range cols {
			cols[i] = types.Column{Name: "c" + string(rune('0'+i)), Kind: fuzzKinds[r.intn(len(fuzzKinds))]}
		}
		schema := types.NewSchema(cols...)
		rows := make([]types.Row, 1+r.intn(24))
		for i := range rows {
			row := make(types.Row, nCols)
			for j := range row {
				row[j] = fuzzValue(&r, cols[j].Kind)
			}
			rows[i] = row
		}

		// Expressions extracted from the parsed statement. Their column
		// names rarely resolve against the random schema; rename them onto
		// it so the corpus's operator shapes are exercised, and also try
		// them raw (unknown columns must fail identically in both paths).
		var exprs []expr.Expr
		if stmt, err := sqlish.Parse(src); err == nil {
			if sel, ok := stmt.(*sqlish.SelectStmt); ok {
				if sel.Where != nil {
					exprs = append(exprs, sel.Where)
				}
				if sel.Having != nil {
					exprs = append(exprs, sel.Having)
				}
				for _, it := range sel.Items {
					if it.Expr != nil {
						exprs = append(exprs, it.Expr)
					}
				}
				exprs = append(exprs, sel.GroupBy...)
			}
		}
		for _, e := range exprs {
			fuzzCheck(t, e, schema, rows)
			renamed := expr.RenameColumns(e, func(string) string {
				return cols[r.intn(nCols)].Name
			})
			fuzzCheck(t, renamed, schema, rows)
		}
		// And random trees over the schema.
		for i := 0; i < 4; i++ {
			fuzzCheck(t, fuzzExpr(&r, cols, 2+r.intn(4)), schema, rows)
		}
	})
}
