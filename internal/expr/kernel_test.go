package expr_test

import (
	"math"
	"testing"

	"repro/internal/expr"
	"repro/internal/types"
)

// diffSchema has one column of every kind (plus a declared-NULL column),
// so generated expressions exercise every static-typing branch of the
// kernel compiler.
func diffSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "i1", Kind: types.KindInt},
		types.Column{Name: "i2", Kind: types.KindInt},
		types.Column{Name: "f1", Kind: types.KindFloat},
		types.Column{Name: "f2", Kind: types.KindFloat},
		types.Column{Name: "b1", Kind: types.KindBool},
		types.Column{Name: "b2", Kind: types.KindBool},
		types.Column{Name: "s1", Kind: types.KindString},
		types.Column{Name: "s2", Kind: types.KindString},
		types.Column{Name: "n1", Kind: types.KindNull},
	)
}

// diffRows covers the numeric edge cases the interpreter's semantics hang
// on: NULLs, signed zero, NaN, infinities, int64 extremes (where float
// conversion loses precision), empty strings, division by zero.
func diffRows() []types.Row {
	ints := []types.Value{
		types.NewInt(0), types.NewInt(1), types.NewInt(-1), types.NewInt(7),
		types.NewInt(math.MaxInt64), types.NewInt(math.MinInt64),
		types.NewInt(1 << 60), types.NewInt((1 << 60) + 1), types.Null,
	}
	floats := []types.Value{
		types.NewFloat(0), types.NewFloat(math.Copysign(0, -1)),
		types.NewFloat(1.5), types.NewFloat(-2.25), types.NewFloat(math.NaN()),
		types.NewFloat(math.Inf(1)), types.NewFloat(math.Inf(-1)),
		types.NewFloat(1e300), types.Null,
	}
	bools := []types.Value{types.NewBool(true), types.NewBool(false), types.Null}
	strs := []types.Value{types.NewString(""), types.NewString("a"), types.NewString("ab"), types.Null}
	var rows []types.Row
	pick := func(vals []types.Value, i int) types.Value { return vals[i%len(vals)] }
	for i := 0; i < 72; i++ {
		rows = append(rows, types.Row{
			pick(ints, i), pick(ints, i/2+3), pick(floats, i), pick(floats, i/3+5),
			pick(bools, i), pick(bools, i/2+1), pick(strs, i), pick(strs, i/2+2),
			types.Null,
		})
	}
	return rows
}

// checkDiff asserts the kernel agrees with the interpreter on e over rows:
// EvalMask/EvalSel against EvalBool, and EvalNumeric against Eval +
// AsFloat (the aggregate-input contract). Returns early (with no failure)
// when the kernel compiler rejects the expression — the fallback contract.
func checkDiff(t *testing.T, e expr.Expr, schema *types.Schema, rows []types.Row) {
	t.Helper()
	c, err := expr.Compile(e, schema)
	if err != nil {
		t.Fatalf("Compile(%s): %v", e, err)
	}
	k, err := expr.CompileKernel(e, schema)
	if err != nil {
		t.Fatalf("CompileKernel(%s): %v (interpreter accepted it)", e, err)
	}
	n := len(rows)
	k.Begin(n)
	for _, col := range k.Cols() {
		for i, row := range rows {
			if !col.Set(i, row[col.Slot()]) {
				t.Fatalf("%s: gather of slot %d row %d (%s) rejected", e, col.Slot(), i, row[col.Slot()])
			}
		}
	}
	mask := make([]bool, n)
	k.EvalMask(mask)
	var wantSel []int
	for i, row := range rows {
		want := c.EvalBool(row)
		if mask[i] != want {
			t.Fatalf("%s: row %d (%s): kernel mask %v, interpreter %v", e, i, row, mask[i], want)
		}
		if want {
			wantSel = append(wantSel, i)
		}
	}
	sel := k.EvalSel(nil)
	if len(sel) != len(wantSel) {
		t.Fatalf("%s: kernel selected %d rows, interpreter %d", e, len(sel), len(wantSel))
	}
	for i := range sel {
		if sel[i] != wantSel[i] {
			t.Fatalf("%s: selection %d: kernel row %d, interpreter row %d", e, i, sel[i], wantSel[i])
		}
	}
	dst := make([]float64, n)
	nulls := make([]bool, n)
	ok := k.EvalNumeric(dst, nulls)
	for i, row := range rows {
		v := c.Eval(row)
		if v.IsNull() {
			if ok && !nulls[i] {
				t.Fatalf("%s: row %d: interpreter NULL, kernel %v", e, i, dst[i])
			}
			continue
		}
		f, numeric := v.AsFloat()
		if !numeric {
			if ok {
				t.Fatalf("%s: row %d: interpreter non-numeric %s but kernel claimed numeric", e, i, v.Kind())
			}
			continue
		}
		if !ok {
			t.Fatalf("%s: row %d: kernel refused numeric eval, interpreter yields %v", e, i, f)
		}
		if nulls[i] {
			t.Fatalf("%s: row %d: kernel NULL, interpreter %v", e, i, f)
		}
		if math.Float64bits(dst[i]) != math.Float64bits(f) && !(math.IsNaN(dst[i]) && math.IsNaN(f)) {
			t.Fatalf("%s: row %d: kernel %v (%x), interpreter %v (%x)", e, i, dst[i], math.Float64bits(dst[i]), f, math.Float64bits(f))
		}
	}
}

// TestKernelDifferentialOps sweeps every binary operator over every pair
// of column kinds (plus NULL literals), pinning the kernel's static-typing
// matrix to the interpreter.
func TestKernelDifferentialOps(t *testing.T) {
	schema := diffSchema()
	rows := diffRows()
	operands := []expr.Expr{
		expr.C("i1"), expr.C("i2"), expr.C("f1"), expr.C("f2"),
		expr.C("b1"), expr.C("b2"), expr.C("s1"), expr.C("s2"), expr.C("n1"),
		expr.I(3), expr.F(2.5), expr.S("ab"), &expr.Const{Val: types.NewBool(true)},
		&expr.Const{Val: types.Null},
	}
	ops := []expr.BinOp{
		expr.OpAdd, expr.OpSub, expr.OpMul, expr.OpDiv,
		expr.OpEq, expr.OpNe, expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe,
		expr.OpAnd, expr.OpOr,
	}
	for _, op := range ops {
		for _, l := range operands {
			for _, r := range operands {
				checkDiff(t, expr.B(op, l, r), schema, rows)
			}
		}
	}
}

// TestKernelDifferentialNested pins composite shapes: fused predicate
// roots over arithmetic, AND/OR over mixed sub-results, NOT/negation
// nesting, division by zero feeding a comparison, int arithmetic overflow
// feeding an int comparison.
func TestKernelDifferentialNested(t *testing.T) {
	schema := diffSchema()
	rows := diffRows()
	cases := []expr.Expr{
		expr.B(expr.OpLt, expr.B(expr.OpAdd, expr.C("i1"), expr.C("i2")), expr.C("f1")),
		expr.B(expr.OpGe, expr.B(expr.OpMul, expr.C("f1"), expr.C("f2")), expr.B(expr.OpDiv, expr.C("f2"), expr.C("f1"))),
		expr.B(expr.OpEq, expr.B(expr.OpMul, expr.C("i1"), expr.C("i1")), expr.C("i2")), // int overflow wraps
		expr.And(
			expr.B(expr.OpLt, expr.C("i1"), expr.I(100)),
			expr.B(expr.OpGt, expr.C("f1"), expr.F(-1)),
			expr.B(expr.OpNe, expr.C("s1"), expr.C("s2")),
		),
		expr.B(expr.OpOr, expr.B(expr.OpEq, expr.C("b1"), expr.C("b2")), expr.C("n1")),
		&expr.Not{Inner: expr.B(expr.OpLe, expr.C("s1"), expr.C("s2"))},
		&expr.Not{Inner: expr.C("i1")}, // NOT of non-boolean: NULL
		&expr.Neg{Inner: expr.C("i1")},
		&expr.Neg{Inner: expr.C("s1")},                                                   // negation of string: NULL
		expr.B(expr.OpAdd, &expr.Neg{Inner: expr.C("f1")}, expr.C("b1")),                 // bool as numeric via AsFloat
		expr.B(expr.OpDiv, expr.C("i1"), expr.C("i2")),                                   // int/int promotes, /0 is NULL
		expr.B(expr.OpLt, expr.C("b1"), expr.C("i1")),                                    // bool vs int ordered: NULL
		expr.B(expr.OpEq, expr.C("b1"), expr.C("i1")),                                    // bool vs int equality: false
		expr.B(expr.OpAnd, expr.C("b1"), expr.B(expr.OpAdd, expr.C("i1"), expr.C("i2"))), // AND with non-bool side
		expr.B(expr.OpOr, expr.C("b1"), expr.C("s1")),
		expr.B(expr.OpSub, expr.C("i1"), expr.C("n1")),
		expr.B(expr.OpAdd, expr.C("i1"), expr.C("i2")), // non-boolean root: EvalBool false everywhere
		expr.C("b1"),
		expr.C("n1"),
	}
	for _, e := range cases {
		checkDiff(t, e, schema, rows)
	}
}

// TestKernelGatherMismatch pins the fallback contract: a runtime value
// whose kind contradicts the declared column kind is rejected by the
// gather, not silently coerced.
func TestKernelGatherMismatch(t *testing.T) {
	schema := types.NewSchema(types.Column{Name: "x", Kind: types.KindInt})
	k, err := expr.CompileKernel(expr.B(expr.OpLt, expr.C("x"), expr.I(5)), schema)
	if err != nil {
		t.Fatal(err)
	}
	k.Begin(2)
	col := k.Cols()[0]
	if !col.Set(0, types.NewInt(3)) {
		t.Fatal("declared-kind value rejected")
	}
	if !col.Set(1, types.Null) {
		t.Fatal("NULL rejected (NULL is valid in any column)")
	}
	if col.Set(1, types.NewFloat(3)) {
		t.Fatal("kind-mismatched value accepted; fallback guard broken")
	}
	if col.Fill(2, types.NewString("x")) {
		t.Fatal("kind-mismatched broadcast accepted")
	}
}

// TestKernelUnknownColumn pins that kernel compilation fails exactly where
// interpretation fails.
func TestKernelUnknownColumn(t *testing.T) {
	schema := diffSchema()
	if _, err := expr.CompileKernel(expr.C("nope"), schema); err == nil {
		t.Fatal("CompileKernel accepted an unresolvable column")
	}
}

// TestKernelFillBroadcast pins Fill against per-row Set: broadcasting a
// tuple's deterministic attribute must equal setting it row by row.
func TestKernelFillBroadcast(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "d", Kind: types.KindFloat},
		types.Column{Name: "r", Kind: types.KindFloat},
	)
	e := expr.B(expr.OpLt, expr.C("d"), expr.C("r"))
	const n = 9
	kFill, _ := expr.CompileKernel(e, schema)
	kSet, _ := expr.CompileKernel(e, schema)
	kFill.Begin(n)
	kSet.Begin(n)
	d := types.NewFloat(0.5)
	for _, col := range kFill.Cols() {
		if col.Slot() == 0 {
			if !col.Fill(n, d) {
				t.Fatal("Fill rejected")
			}
		} else {
			for i := 0; i < n; i++ {
				col.Set(i, types.NewFloat(float64(i)/4-0.6))
			}
		}
	}
	for _, col := range kSet.Cols() {
		for i := 0; i < n; i++ {
			if col.Slot() == 0 {
				col.Set(i, d)
			} else {
				col.Set(i, types.NewFloat(float64(i)/4-0.6))
			}
		}
	}
	mFill, mSet := make([]bool, n), make([]bool, n)
	kFill.EvalMask(mFill)
	kSet.EvalMask(mSet)
	for i := range mFill {
		if mFill[i] != mSet[i] {
			t.Fatalf("row %d: Fill path %v, Set path %v", i, mFill[i], mSet[i])
		}
	}
}

// TestKernelBatchReuse pins lane reuse: evaluating a big batch, then a
// small one, then a big one again must not leak stale lane values across
// Begin calls.
func TestKernelBatchReuse(t *testing.T) {
	schema := diffSchema()
	rows := diffRows()
	e := expr.And(
		expr.B(expr.OpLe, expr.C("i1"), expr.C("f1")),
		expr.B(expr.OpNe, expr.C("b1"), expr.C("b2")),
	)
	c := expr.MustCompile(e, schema)
	k, err := expr.CompileKernel(e, schema)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{len(rows), 1, 3, len(rows)} {
		k.Begin(n)
		for _, col := range k.Cols() {
			for i := 0; i < n; i++ {
				col.Set(i, rows[i][col.Slot()])
			}
		}
		mask := make([]bool, n)
		k.EvalMask(mask)
		for i := 0; i < n; i++ {
			if want := c.EvalBool(rows[i]); mask[i] != want {
				t.Fatalf("n=%d row %d: kernel %v, interpreter %v", n, i, mask[i], want)
			}
		}
	}
}
