package expr

import (
	"testing"
	"testing/quick"

	"repro/internal/types"
)

var testSchema = types.NewSchema(
	types.Column{Name: "t.a", Kind: types.KindInt},
	types.Column{Name: "t.b", Kind: types.KindFloat},
	types.Column{Name: "t.s", Kind: types.KindString},
)

func row(a int64, b float64, s string) types.Row {
	return types.Row{types.NewInt(a), types.NewFloat(b), types.NewString(s)}
}

func evalOn(t *testing.T, e Expr, r types.Row) types.Value {
	t.Helper()
	c, err := Compile(e, testSchema)
	if err != nil {
		t.Fatalf("compile %s: %v", e, err)
	}
	return c.Eval(r)
}

func TestArithmetic(t *testing.T) {
	r := row(6, 2.5, "x")
	cases := []struct {
		e    Expr
		want types.Value
	}{
		{B(OpAdd, C("a"), I(4)), types.NewInt(10)},
		{B(OpSub, C("a"), I(1)), types.NewInt(5)},
		{B(OpMul, C("a"), I(3)), types.NewInt(18)},
		{B(OpDiv, C("a"), I(4)), types.NewFloat(1.5)},
		{B(OpAdd, C("a"), C("b")), types.NewFloat(8.5)},
		{B(OpMul, C("b"), F(2)), types.NewFloat(5)},
		{&Neg{C("a")}, types.NewInt(-6)},
		{&Neg{C("b")}, types.NewFloat(-2.5)},
	}
	for _, tc := range cases {
		if got := evalOn(t, tc.e, r); !got.Equal(tc.want) {
			t.Errorf("%s = %v, want %v", tc.e, got, tc.want)
		}
	}
}

func TestDivisionByZeroIsNull(t *testing.T) {
	if got := evalOn(t, B(OpDiv, C("a"), I(0)), row(1, 0, "")); !got.IsNull() {
		t.Fatalf("x/0 = %v, want NULL", got)
	}
}

func TestComparisons(t *testing.T) {
	r := row(6, 2.5, "abc")
	trueCases := []Expr{
		B(OpEq, C("a"), I(6)),
		B(OpEq, C("a"), F(6)), // cross-kind numeric equality
		B(OpNe, C("a"), I(7)),
		B(OpLt, C("b"), I(3)),
		B(OpLe, C("b"), F(2.5)),
		B(OpGt, C("a"), C("b")),
		B(OpGe, C("a"), I(6)),
		B(OpEq, C("s"), S("abc")),
		B(OpLt, C("s"), S("abd")),
	}
	for _, e := range trueCases {
		if got := evalOn(t, e, r); got.Kind() != types.KindBool || !got.Bool() {
			t.Errorf("%s = %v, want true", e, got)
		}
	}
	if got := evalOn(t, B(OpLt, C("s"), I(1)), r); !got.IsNull() {
		t.Errorf("string<int = %v, want NULL", got)
	}
}

func TestBooleanLogicAndShortCircuit(t *testing.T) {
	r := row(6, 2.5, "x")
	e := And(B(OpGt, C("a"), I(0)), B(OpLt, C("b"), I(3)))
	if got := evalOn(t, e, r); !got.Bool() {
		t.Errorf("AND = %v", got)
	}
	// FALSE AND NULL = FALSE (short-circuit).
	e = B(OpAnd, B(OpGt, C("a"), I(100)), B(OpLt, C("s"), I(1)))
	if got := evalOn(t, e, r); got.IsNull() || got.Bool() {
		t.Errorf("FALSE AND NULL = %v, want false", got)
	}
	// TRUE OR NULL = TRUE.
	e = B(OpOr, B(OpGt, C("a"), I(0)), B(OpLt, C("s"), I(1)))
	if got := evalOn(t, e, r); got.IsNull() || !got.Bool() {
		t.Errorf("TRUE OR NULL = %v, want true", got)
	}
	if got := evalOn(t, &Not{B(OpGt, C("a"), I(0))}, r); got.Bool() {
		t.Errorf("NOT true = %v", got)
	}
}

func TestNullPropagation(t *testing.T) {
	r := types.Row{types.Null, types.NewFloat(1), types.NewString("x")}
	for _, e := range []Expr{
		B(OpAdd, C("a"), I(1)),
		B(OpEq, C("a"), I(1)),
		B(OpLt, C("a"), I(1)),
		&Neg{C("a")},
	} {
		if got := evalOn(t, e, r); !got.IsNull() {
			t.Errorf("%s = %v, want NULL", e, got)
		}
	}
}

func TestEvalBoolTreatsNullAsFalse(t *testing.T) {
	c := MustCompile(B(OpLt, C("a"), I(1)), testSchema)
	if c.EvalBool(types.Row{types.Null, types.NewFloat(0), types.NewString("")}) {
		t.Fatal("NULL predicate must be false")
	}
}

func TestCompileUnknownColumn(t *testing.T) {
	if _, err := Compile(C("missing"), testSchema); err == nil {
		t.Fatal("expected error for unknown column")
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustCompile(C("nope"), testSchema)
}

func TestColumnsCollection(t *testing.T) {
	e := And(B(OpGt, C("t.a"), C("t.b")), B(OpEq, C("t.a"), I(1)))
	got := Columns(e)
	if len(got) != 2 || got[0] != "t.a" || got[1] != "t.b" {
		t.Fatalf("Columns = %v", got)
	}
}

func TestSplitConjuncts(t *testing.T) {
	e := And(B(OpGt, C("a"), I(1)), B(OpLt, C("b"), I(2)), B(OpEq, C("s"), S("x")))
	parts := SplitConjuncts(e)
	if len(parts) != 3 {
		t.Fatalf("SplitConjuncts = %d parts", len(parts))
	}
	// A non-AND expression is its own single conjunct.
	if got := SplitConjuncts(B(OpOr, C("a"), C("b"))); len(got) != 1 {
		t.Fatalf("OR split = %d parts", len(got))
	}
}

func TestEquiJoinSides(t *testing.T) {
	l, r, ok := EquiJoinSides(B(OpEq, C("t.a"), C("u.b")))
	if !ok || l != "t.a" || r != "u.b" {
		t.Fatalf("EquiJoinSides = %q,%q,%v", l, r, ok)
	}
	if _, _, ok := EquiJoinSides(B(OpEq, C("t.a"), I(1))); ok {
		t.Fatal("col=const is not an equi-join")
	}
	if _, _, ok := EquiJoinSides(B(OpLt, C("t.a"), C("u.b"))); ok {
		t.Fatal("< is not an equi-join")
	}
}

func TestStringRendering(t *testing.T) {
	e := And(B(OpGt, C("a"), I(1)), &Not{B(OpEq, C("s"), S("x"))})
	want := "((a > 1) AND NOT (s = 'x'))"
	if got := e.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestArithCommutativityProperty(t *testing.T) {
	// a + b == b + a for float columns (no NaN inputs generated here).
	f := func(a int64, b float64) bool {
		r := row(a, b, "")
		e1 := MustCompile(B(OpAdd, C("a"), C("b")), testSchema)
		e2 := MustCompile(B(OpAdd, C("b"), C("a")), testSchema)
		return e1.Eval(r).Equal(e2.Eval(r))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompiledNoAllocEval(t *testing.T) {
	c := MustCompile(B(OpAdd, C("a"), C("b")), testSchema)
	r := row(1, 2, "")
	allocs := testing.AllocsPerRun(1000, func() { c.Eval(r) })
	if allocs > 0 {
		t.Fatalf("Eval allocates %v per run, want 0", allocs)
	}
}

func TestRenameColumns(t *testing.T) {
	e := B(OpAnd,
		B(OpGt, C("val"), F(1)),
		&Not{Inner: B(OpEq, &Neg{Inner: C("cid")}, C("l.cid"))})
	got := RenameColumns(e, func(name string) string {
		if name == "val" || name == "cid" {
			return "l." + name
		}
		return name
	})
	want := "((l.val > 1) AND NOT (-l.cid = l.cid))"
	if got.String() != want {
		t.Fatalf("renamed = %s, want %s", got, want)
	}
	// The original expression is untouched.
	if e.String() != "((val > 1) AND NOT (-cid = l.cid))" {
		t.Fatalf("original mutated: %s", e)
	}
	// Identity rename shares leaf nodes instead of copying.
	id := RenameColumns(e, func(name string) string { return name })
	if id.String() != e.String() {
		t.Fatalf("identity rename changed the expression: %s", id)
	}
}
