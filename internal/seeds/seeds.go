// Package seeds implements MCDB-R's tail-sampling seeds (paper §6). A
// TS-seed augments a PRNG seed with the bookkeeping the Gibbs Looper needs:
// the range of stream values currently materialized, the last stream value
// ever tried by rejection sampling, and the stream position currently
// assigned to each DB version. Seeds are stored sorted by handle so the
// looper can merge them with the Gibbs-tuple priority queue, and cloning a
// DB version is a single pass copying assignment columns (paper App. A).
package seeds

import (
	"fmt"
	"sort"

	"repro/internal/prng"
	"repro/internal/types"
	"repro/internal/vg"
)

// Window holds the materialized stream elements of one TS-seed. After a
// replenishing run (paper §9) the window is no longer contiguous: it covers
// a fresh contiguous segment of never-processed positions plus the sparse
// set of positions still assigned to some DB version.
type Window struct {
	// Lo is the first position of the contiguous segment.
	Lo uint64
	// Vals holds the contiguous segment: Vals[i] is the VG output row for
	// position Lo+i.
	Vals [][]types.Value
	// Sparse holds still-assigned positions below Lo that survived a
	// replenishing run.
	Sparse map[uint64][]types.Value
}

// Get returns the VG output row at the given stream position.
func (w *Window) Get(pos uint64) ([]types.Value, bool) {
	if pos >= w.Lo && pos < w.Lo+uint64(len(w.Vals)) {
		return w.Vals[pos-w.Lo], true
	}
	v, ok := w.Sparse[pos]
	return v, ok
}

// Contains reports whether the position is materialized.
func (w *Window) Contains(pos uint64) bool {
	_, ok := w.Get(pos)
	return ok
}

// End returns one past the last contiguous position.
func (w *Window) End() uint64 { return w.Lo + uint64(len(w.Vals)) }

// Positions returns all materialized positions in ascending order.
func (w *Window) Positions() []uint64 {
	out := make([]uint64, 0, len(w.Vals)+len(w.Sparse))
	for p := range w.Sparse {
		out = append(out, p)
	}
	for i := range w.Vals {
		out = append(out, w.Lo+uint64(i))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TSSeed is one tail-sampling seed (paper §6): it identifies a stream of VG
// outputs and tracks which stream position each DB version currently uses.
type TSSeed struct {
	// ID is the seed handle; the Gibbs Looper processes seeds in
	// increasing handle order.
	ID uint64
	// Stream is the underlying pseudorandom stream.
	Stream prng.Stream
	// Gen is the VG function that interprets the stream.
	Gen vg.Func
	// Params is the parameter row the VG function is invoked with.
	Params []types.Value
	// Window is the materialized range of stream values (item 3 in §6).
	Window Window
	// MaxUsed is the largest stream position ever tried for any DB
	// version (item 4) — the rejection sampler resumes from MaxUsed+1.
	MaxUsed uint64
	// Assign maps DB version index -> currently assigned stream position
	// (item 5).
	Assign []uint64
	// Cancel, when non-nil, is polled inside Materialize's fill loop so a
	// cancelled run aborts mid-window instead of generating millions more
	// stream values first. The executor wires it to the run context.
	Cancel func() error
}

// cancelCheckMask throttles Cancel polling to every 16Ki window elements:
// frequent enough that a multi-million-element window aborts within
// milliseconds of cancellation, rare enough to be free next to sampling.
const cancelCheckMask = 1<<14 - 1

func (s *TSSeed) cancelled() error {
	if s.Cancel == nil {
		return nil
	}
	return s.Cancel()
}

// ValueAt generates the VG output row for a stream position on demand.
// Materialize uses it to fill windows; it is also the ground truth that
// window contents are checked against in tests.
func (s *TSSeed) ValueAt(pos uint64) ([]types.Value, error) {
	return s.Gen.Generate(s.Params, s.Stream.At(pos))
}

// Materialize fills the window with the contiguous range [lo, lo+count) plus
// the given sparse positions (used by replenishing runs to keep currently
// assigned values available). Existing window contents are replaced.
//
// VG functions implementing vg.Preparer take the fast path: the parameter
// row is parsed once and all output rows are carved from one flat value
// arena, so a window costs O(1) allocations instead of several per
// element. Both paths produce bit-identical values (vg.Preparer contract).
func (s *TSSeed) Materialize(lo uint64, count int, sparse []uint64) error {
	w := Window{Lo: lo, Vals: make([][]types.Value, count)}
	nOut := len(s.Gen.OutKinds())
	var sampler vg.Sampler
	if p, ok := s.Gen.(vg.Preparer); ok && nOut > 0 && count > 0 {
		sp, err := p.Prepare(s.Params)
		if err != nil {
			return fmt.Errorf("seeds: seed %d materialize pos %d: %w", s.ID, lo, err)
		}
		sampler = sp
	}
	if sampler != nil {
		arena := make([]types.Value, count*nOut)
		// sub is hoisted out of the loop: passing a per-iteration variable's
		// address through the Sampler indirection would make it escape and
		// cost one heap allocation per element.
		var sub prng.Sub
		for i := 0; i < count; i++ {
			if i&cancelCheckMask == 0 {
				if err := s.cancelled(); err != nil {
					return err
				}
			}
			dst := arena[i*nOut : (i+1)*nOut : (i+1)*nOut]
			sub = s.Stream.SubAt(lo + uint64(i))
			if err := sampler(&sub, dst); err != nil {
				return fmt.Errorf("seeds: seed %d materialize pos %d: %w", s.ID, lo+uint64(i), err)
			}
			w.Vals[i] = dst
		}
	} else {
		for i := 0; i < count; i++ {
			if i&cancelCheckMask == 0 {
				if err := s.cancelled(); err != nil {
					return err
				}
			}
			v, err := s.ValueAt(lo + uint64(i))
			if err != nil {
				return fmt.Errorf("seeds: seed %d materialize pos %d: %w", s.ID, lo+uint64(i), err)
			}
			w.Vals[i] = v
		}
	}
	if len(sparse) > 0 {
		w.Sparse = make(map[uint64][]types.Value, len(sparse))
		for _, p := range sparse {
			if p >= lo && p < lo+uint64(count) {
				continue
			}
			v, err := s.ValueAt(p)
			if err != nil {
				return fmt.Errorf("seeds: seed %d materialize sparse pos %d: %w", s.ID, p, err)
			}
			w.Sparse[p] = v
		}
	}
	s.Window = w
	return nil
}

// AssignedPositions returns the distinct stream positions currently assigned
// to any DB version, ascending.
func (s *TSSeed) AssignedPositions() []uint64 {
	set := make(map[uint64]struct{}, len(s.Assign))
	for _, p := range s.Assign {
		set[p] = struct{}{}
	}
	out := make([]uint64, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Store holds all TS-seeds of a query, ordered by handle. The zero value is
// not usable; call NewStore.
type Store struct {
	byID  map[uint64]*TSSeed
	order []uint64 // sorted handles
	next  uint64   // next handle to allocate
}

// NewStore returns an empty seed store.
func NewStore() *Store {
	return &Store{byID: make(map[uint64]*TSSeed)}
}

// Alloc creates and registers a new TS-seed with the next handle. The
// stream is derived deterministically from master so that re-running a
// query plan (replenishment, §9) reproduces identical seeds in identical
// order.
func (st *Store) Alloc(master prng.Stream, gen vg.Func, params []types.Value) *TSSeed {
	id := st.next
	st.next++
	if existing, ok := st.byID[id]; ok {
		// Replenishing run re-allocating the same handle: the pipeline is
		// deterministic, so this must be the same logical seed. Keep all
		// bookkeeping (assignments, MaxUsed); refresh definition.
		existing.Gen = gen
		existing.Params = params
		return existing
	}
	s := &TSSeed{ID: id, Stream: master.Derive(id), Gen: gen, Params: params}
	st.byID[id] = s
	st.order = append(st.order, id)
	return s
}

// ResetAlloc rewinds the handle allocator for a replenishing run; Alloc
// calls will then revisit existing seeds in the original order.
func (st *Store) ResetAlloc() { st.next = 0 }

// Get returns the seed with the given handle.
func (st *Store) Get(id uint64) (*TSSeed, bool) {
	s, ok := st.byID[id]
	return s, ok
}

// MustGet returns the seed or panics; for engine-internal handles.
func (st *Store) MustGet(id uint64) *TSSeed {
	s, ok := st.byID[id]
	if !ok {
		panic(fmt.Sprintf("seeds: unknown handle %d", id))
	}
	return s
}

// Len returns the number of seeds.
func (st *Store) Len() int { return len(st.byID) }

// IDs returns all handles in ascending order; the looper's outer loop.
func (st *Store) IDs() []uint64 { return append([]uint64(nil), st.order...) }

// InitAssign sets every seed's assignment to the identity mapping
// (version v uses stream position v) for n versions, and MaxUsed = n-1 —
// the paper's initial mapping "the i-th value in each stream is mapped to
// the i-th DB version".
func (st *Store) InitAssign(n int) { st.InitAssignAt(0, n) }

// InitAssignAt is InitAssign shifted to a shard base: version v uses
// stream position base+v, and MaxUsed = base+n-1. Replicate-sharded
// parallel execution uses it so a worker handling replicates [base,
// base+n) evaluates exactly the stream positions the sequential engine
// would assign to those replicates.
func (st *Store) InitAssignAt(base uint64, n int) {
	for _, id := range st.order {
		s := st.byID[id]
		s.Assign = make([]uint64, n)
		for v := 0; v < n; v++ {
			s.Assign[v] = base + uint64(v)
		}
		if n > 0 {
			s.MaxUsed = base + uint64(n-1)
		}
	}
}

// CloneVersions overwrites all seeds' assignment columns with clones of the
// elite versions, resizing to newN versions. Elite version j of the old
// assignment is copied to new versions [j*newN/e, (j+1)*newN/e) — the block
// layout of the paper's Fig. 1(b). This is the single read/write pass over
// the TS-seed file described in Appendix A.
func (st *Store) CloneVersions(elite []int, newN int) error {
	if len(elite) == 0 {
		return fmt.Errorf("seeds: CloneVersions with empty elite set")
	}
	if newN <= 0 {
		return fmt.Errorf("seeds: CloneVersions to %d versions", newN)
	}
	e := len(elite)
	for _, id := range st.order {
		s := st.byID[id]
		for _, v := range elite {
			if v < 0 || v >= len(s.Assign) {
				return fmt.Errorf("seeds: elite version %d out of range (seed %d has %d versions)", v, id, len(s.Assign))
			}
		}
		na := make([]uint64, newN)
		for j := 0; j < newN; j++ {
			na[j] = s.Assign[elite[j*e/newN]]
		}
		s.Assign = na
	}
	return nil
}
