package seeds

import (
	"bytes"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/prng"
	"repro/internal/types"
	"repro/internal/vg"
)

// newTestStore builds a store of Normal-VG seeds; t may be nil when called
// from property functions, in which case errors panic.
func newTestStore(t *testing.T, nSeeds, nVersions int) (*Store, prng.Stream) {
	if t != nil {
		t.Helper()
	}
	reg := vg.NewRegistry()
	normal, _ := reg.Lookup("Normal")
	master := prng.NewStream(42)
	st := NewStore()
	for i := 0; i < nSeeds; i++ {
		s := st.Alloc(master, normal, []types.Value{types.NewFloat(float64(i + 3)), types.NewFloat(1)})
		if err := s.Materialize(0, 16, nil); err != nil {
			if t != nil {
				t.Fatal(err)
			}
			panic(err)
		}
	}
	st.InitAssign(nVersions)
	return st, master
}

func TestAllocAssignsSequentialHandles(t *testing.T) {
	st, _ := newTestStore(t, 5, 4)
	ids := st.IDs()
	if len(ids) != 5 {
		t.Fatalf("Len = %d", len(ids))
	}
	for i, id := range ids {
		if id != uint64(i) {
			t.Fatalf("handle %d at position %d", id, i)
		}
	}
}

func TestWindowGet(t *testing.T) {
	w := Window{Lo: 10, Vals: [][]types.Value{{types.NewFloat(1)}, {types.NewFloat(2)}},
		Sparse: map[uint64][]types.Value{3: {types.NewFloat(9)}}}
	if v, ok := w.Get(10); !ok || v[0].Float() != 1 {
		t.Fatal("Get(10) failed")
	}
	if v, ok := w.Get(11); !ok || v[0].Float() != 2 {
		t.Fatal("Get(11) failed")
	}
	if v, ok := w.Get(3); !ok || v[0].Float() != 9 {
		t.Fatal("Get sparse failed")
	}
	if _, ok := w.Get(12); ok {
		t.Fatal("Get(12) should miss")
	}
	if _, ok := w.Get(5); ok {
		t.Fatal("Get(5) should miss")
	}
	if w.End() != 12 {
		t.Fatalf("End = %d", w.End())
	}
	pos := w.Positions()
	want := []uint64{3, 10, 11}
	for i := range want {
		if pos[i] != want[i] {
			t.Fatalf("Positions = %v", pos)
		}
	}
}

func TestMaterializeMatchesValueAt(t *testing.T) {
	st, _ := newTestStore(t, 1, 2)
	s := st.MustGet(0)
	for pos := uint64(0); pos < 16; pos++ {
		want, err := s.ValueAt(pos)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := s.Window.Get(pos)
		if !ok || !got[0].Equal(want[0]) {
			t.Fatalf("window pos %d = %v, want %v", pos, got, want)
		}
	}
}

func TestMaterializeSparseKeepsAssigned(t *testing.T) {
	st, _ := newTestStore(t, 1, 4)
	s := st.MustGet(0)
	old2, _ := s.Window.Get(2)
	// Replenish: fresh range [16,24), keep assigned positions 0..3.
	if err := s.Materialize(16, 8, []uint64{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if s.Window.Lo != 16 || len(s.Window.Vals) != 8 {
		t.Fatalf("window = lo %d len %d", s.Window.Lo, len(s.Window.Vals))
	}
	got, ok := s.Window.Get(2)
	if !ok || !got[0].Equal(old2[0]) {
		t.Fatalf("sparse position 2 lost or changed: %v vs %v", got, old2)
	}
	if s.Window.Contains(5) {
		t.Fatal("unassigned old position 5 must not be rematerialized")
	}
}

func TestInitAssign(t *testing.T) {
	st, _ := newTestStore(t, 3, 4)
	for _, id := range st.IDs() {
		s := st.MustGet(id)
		for v := 0; v < 4; v++ {
			if s.Assign[v] != uint64(v) {
				t.Fatalf("seed %d version %d assigned %d", id, v, s.Assign[v])
			}
		}
		if s.MaxUsed != 3 {
			t.Fatalf("MaxUsed = %d", s.MaxUsed)
		}
	}
}

func TestCloneVersionsBlockLayout(t *testing.T) {
	// Fig 1(b): 4 versions, elite {1,3} -> new assignments [a1,a1,a3,a3].
	st, _ := newTestStore(t, 2, 4)
	s := st.MustGet(0)
	s.Assign = []uint64{10, 11, 12, 13}
	st.MustGet(1).Assign = []uint64{20, 21, 22, 23}
	if err := st.CloneVersions([]int{1, 3}, 4); err != nil {
		t.Fatal(err)
	}
	want := []uint64{11, 11, 13, 13}
	for v, w := range want {
		if s.Assign[v] != w {
			t.Fatalf("Assign = %v, want %v", s.Assign, want)
		}
	}
	if got := st.MustGet(1).Assign; got[0] != 21 || got[3] != 23 {
		t.Fatalf("second seed Assign = %v", got)
	}
}

func TestCloneVersionsResize(t *testing.T) {
	st, _ := newTestStore(t, 1, 4)
	s := st.MustGet(0)
	s.Assign = []uint64{10, 11, 12, 13}
	// Grow to 6 versions from elite {0,2}.
	if err := st.CloneVersions([]int{0, 2}, 6); err != nil {
		t.Fatal(err)
	}
	want := []uint64{10, 10, 10, 12, 12, 12}
	for v, w := range want {
		if s.Assign[v] != w {
			t.Fatalf("Assign = %v, want %v", s.Assign, want)
		}
	}
	// Shrink to 2.
	if err := st.CloneVersions([]int{1, 5}, 2); err != nil {
		t.Fatal(err)
	}
	if s.Assign[0] != 10 || s.Assign[1] != 12 {
		t.Fatalf("shrunk Assign = %v", s.Assign)
	}
}

func TestCloneVersionsErrors(t *testing.T) {
	st, _ := newTestStore(t, 1, 4)
	if err := st.CloneVersions(nil, 4); err == nil {
		t.Fatal("empty elite must error")
	}
	if err := st.CloneVersions([]int{9}, 4); err == nil {
		t.Fatal("out-of-range elite must error")
	}
	if err := st.CloneVersions([]int{0}, 0); err == nil {
		t.Fatal("zero target must error")
	}
}

func TestCloneVersionsProperty(t *testing.T) {
	// Property: after cloning, every assignment column value comes from an
	// elite version's previous value.
	f := func(eliteRaw []uint8, newNRaw uint8) bool {
		st, _ := newTestStore(nil, 1, 8)
		s := st.MustGet(0)
		for v := range s.Assign {
			s.Assign[v] = uint64(100 + v)
		}
		if len(eliteRaw) == 0 {
			return true
		}
		elite := make([]int, 0, len(eliteRaw))
		seen := map[int]bool{}
		for _, e := range eliteRaw {
			v := int(e) % 8
			if !seen[v] {
				seen[v] = true
				elite = append(elite, v)
			}
		}
		newN := int(newNRaw)%16 + 1
		old := append([]uint64(nil), s.Assign...)
		if err := st.CloneVersions(elite, newN); err != nil {
			return false
		}
		if len(s.Assign) != newN {
			return false
		}
		allowed := map[uint64]bool{}
		for _, e := range elite {
			allowed[old[e]] = true
		}
		for _, a := range s.Assign {
			if !allowed[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestResetAllocReusesSeeds(t *testing.T) {
	st, master := newTestStore(t, 3, 4)
	reg := vg.NewRegistry()
	normal, _ := reg.Lookup("Normal")
	s0 := st.MustGet(0)
	s0.MaxUsed = 99
	s0.Assign[2] = 55
	st.ResetAlloc()
	again := st.Alloc(master, normal, []types.Value{types.NewFloat(3), types.NewFloat(1)})
	if again != s0 {
		t.Fatal("re-allocation must return the existing seed")
	}
	if again.MaxUsed != 99 || again.Assign[2] != 55 {
		t.Fatal("bookkeeping lost on re-allocation")
	}
	if st.Len() != 3 {
		t.Fatalf("Len = %d after re-alloc", st.Len())
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	st, master := newTestStore(t, 4, 3)
	s1 := st.MustGet(1)
	s1.MaxUsed = 12
	s1.Assign = []uint64{4, 9, 2}
	if err := s1.Materialize(13, 5, []uint64{4, 9, 2}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf, vg.NewRegistry(), master)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 4 {
		t.Fatalf("loaded Len = %d", back.Len())
	}
	b1 := back.MustGet(1)
	if b1.MaxUsed != 12 || b1.Assign[1] != 9 {
		t.Fatalf("bookkeeping lost: %+v", b1)
	}
	// Window values must regenerate identically.
	for _, pos := range []uint64{13, 17, 4, 9, 2} {
		want, _ := s1.Window.Get(pos)
		got, ok := b1.Window.Get(pos)
		if !ok || !got[0].Equal(want[0]) {
			t.Fatalf("pos %d: %v vs %v", pos, got, want)
		}
	}
	// Streams derived identically: new values also match.
	w1, _ := s1.ValueAt(1000)
	w2, _ := b1.ValueAt(1000)
	if !w1[0].Equal(w2[0]) {
		t.Fatal("stream derivation lost in round trip")
	}
}

func TestSaveLoadFile(t *testing.T) {
	st, master := newTestStore(t, 2, 2)
	path := filepath.Join(t.TempDir(), "seeds.bin")
	if err := st.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path, vg.NewRegistry(), master)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("loaded %d seeds", back.Len())
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8}), vg.NewRegistry(), prng.NewStream(1)); err == nil {
		t.Fatal("garbage must not load")
	}
}

func TestAssignedPositions(t *testing.T) {
	st, _ := newTestStore(t, 1, 4)
	s := st.MustGet(0)
	s.Assign = []uint64{7, 3, 7, 1}
	got := s.AssignedPositions()
	want := []uint64{1, 3, 7}
	if len(got) != 3 {
		t.Fatalf("AssignedPositions = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AssignedPositions = %v, want %v", got, want)
		}
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStore().MustGet(7)
}
