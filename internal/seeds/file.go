package seeds

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"slices"

	"repro/internal/prng"
	"repro/internal/types"
	"repro/internal/vg"
)

// This file implements the on-disk TS-seed format. The paper stores
// TS-seeds in a file sorted on handle (App. A input 5); we persist the
// regeneration recipe (VG name, parameters, window extent, assignments)
// rather than the window values themselves, since every stream element is a
// pure function of (seed, position) and can be rematerialized on load.

const fileMagic = uint32(0x4d434452) // "MCDR"

// Save writes the store to w in handle order.
func (st *Store) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	write := func(v any) error { return binary.Write(bw, binary.LittleEndian, v) }
	if err := write(fileMagic); err != nil {
		return err
	}
	if err := write(uint64(len(st.order))); err != nil {
		return err
	}
	if err := write(st.next); err != nil {
		return err
	}
	for _, id := range st.order {
		s := st.byID[id]
		if err := write(s.ID); err != nil {
			return err
		}
		if err := writeString(bw, s.Gen.Name()); err != nil {
			return err
		}
		if err := write(uint32(len(s.Params))); err != nil {
			return err
		}
		for _, p := range s.Params {
			if err := writeValue(bw, p); err != nil {
				return err
			}
		}
		if err := write(s.Window.Lo); err != nil {
			return err
		}
		if err := write(uint64(len(s.Window.Vals))); err != nil {
			return err
		}
		sparse := make([]uint64, 0, len(s.Window.Sparse))
		for p := range s.Window.Sparse {
			sparse = append(sparse, p)
		}
		// Canonical byte stream: map order would write the same state
		// differently on every save.
		slices.Sort(sparse)
		if err := write(uint64(len(sparse))); err != nil {
			return err
		}
		for _, p := range sparse {
			if err := write(p); err != nil {
				return err
			}
		}
		if err := write(s.MaxUsed); err != nil {
			return err
		}
		if err := write(uint64(len(s.Assign))); err != nil {
			return err
		}
		for _, a := range s.Assign {
			if err := write(a); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load reads a store written by Save. VG functions are resolved through the
// registry, streams are re-derived from master, and windows are
// rematerialized.
func Load(r io.Reader, reg *vg.Registry, master prng.Stream) (*Store, error) {
	br := bufio.NewReader(r)
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }
	var magic uint32
	if err := read(&magic); err != nil {
		return nil, fmt.Errorf("seeds: read magic: %w", err)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("seeds: bad magic %#x", magic)
	}
	var n, next uint64
	if err := read(&n); err != nil {
		return nil, err
	}
	if err := read(&next); err != nil {
		return nil, err
	}
	st := NewStore()
	st.next = next
	var prevID uint64
	for i := uint64(0); i < n; i++ {
		s := &TSSeed{}
		if err := read(&s.ID); err != nil {
			return nil, err
		}
		if i > 0 && s.ID <= prevID {
			return nil, fmt.Errorf("seeds: file not sorted by handle (%d after %d)", s.ID, prevID)
		}
		prevID = s.ID
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		gen, ok := reg.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("seeds: VG function %q not registered", name)
		}
		s.Gen = gen
		s.Stream = master.Derive(s.ID)
		var np uint32
		if err := read(&np); err != nil {
			return nil, err
		}
		s.Params = make([]types.Value, np)
		for j := range s.Params {
			v, err := readValue(br)
			if err != nil {
				return nil, err
			}
			s.Params[j] = v
		}
		var lo, count, nsparse uint64
		if err := read(&lo); err != nil {
			return nil, err
		}
		if err := read(&count); err != nil {
			return nil, err
		}
		if err := read(&nsparse); err != nil {
			return nil, err
		}
		sparse := make([]uint64, nsparse)
		for j := range sparse {
			if err := read(&sparse[j]); err != nil {
				return nil, err
			}
		}
		if err := read(&s.MaxUsed); err != nil {
			return nil, err
		}
		var na uint64
		if err := read(&na); err != nil {
			return nil, err
		}
		s.Assign = make([]uint64, na)
		for j := range s.Assign {
			if err := read(&s.Assign[j]); err != nil {
				return nil, err
			}
		}
		if err := s.Materialize(lo, int(count), sparse); err != nil {
			return nil, err
		}
		st.byID[s.ID] = s
		st.order = append(st.order, s.ID)
	}
	return st, nil
}

// SaveFile writes the store to path.
func (st *Store) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := st.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a store from path.
func LoadFile(path string, reg *vg.Registry, master prng.Stream) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, reg, master)
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := w.Write([]byte(s))
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeValue(w io.Writer, v types.Value) error {
	if err := binary.Write(w, binary.LittleEndian, uint8(v.Kind())); err != nil {
		return err
	}
	switch v.Kind() {
	case types.KindNull:
		return nil
	case types.KindInt:
		return binary.Write(w, binary.LittleEndian, v.Int())
	case types.KindFloat:
		return binary.Write(w, binary.LittleEndian, math.Float64bits(v.Float()))
	case types.KindBool:
		var b uint8
		if v.Bool() {
			b = 1
		}
		return binary.Write(w, binary.LittleEndian, b)
	case types.KindString:
		return writeString(w, v.Str())
	default:
		return fmt.Errorf("seeds: cannot encode %s", v.Kind())
	}
}

func readValue(r io.Reader) (types.Value, error) {
	var k uint8
	if err := binary.Read(r, binary.LittleEndian, &k); err != nil {
		return types.Null, err
	}
	switch types.Kind(k) {
	case types.KindNull:
		return types.Null, nil
	case types.KindInt:
		var i int64
		if err := binary.Read(r, binary.LittleEndian, &i); err != nil {
			return types.Null, err
		}
		return types.NewInt(i), nil
	case types.KindFloat:
		var bits uint64
		if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
			return types.Null, err
		}
		return types.NewFloat(math.Float64frombits(bits)), nil
	case types.KindBool:
		var b uint8
		if err := binary.Read(r, binary.LittleEndian, &b); err != nil {
			return types.Null, err
		}
		return types.NewBool(b != 0), nil
	case types.KindString:
		s, err := readString(r)
		if err != nil {
			return types.Null, err
		}
		return types.NewString(s), nil
	default:
		return types.Null, fmt.Errorf("seeds: cannot decode kind %d", k)
	}
}
