// Package tail provides the tail-sampling driver (the paper's Algorithm 3
// as a user-facing operation) and the Appendix C machinery for choosing its
// parameters: the number of bootstrapping steps m, the per-step sample
// sizes n_i and tail probabilities p_i, and the total sample budget N for a
// target mean-squared relative error (MSRE).
package tail

import (
	"fmt"
	"math"

	"repro/internal/prng"
	"repro/internal/stats"
)

// G computes g_m(N, p, c) = ((N/m) p^{1/m} + c)^m / ((N/m) + c)^m — the
// value of h_c under the equal-split parameters of Theorem 1.
func G(N float64, m int, p, c float64) float64 {
	n := N / float64(m)
	base := (n*math.Pow(p, 1/float64(m)) + c) / (n + c)
	return math.Pow(base, float64(m))
}

// Hc computes h_c(nu, rho, m) = prod_i (n_i p_i + c) / (n_i + c) for
// arbitrary per-step parameters (Appendix C).
func Hc(nu, rho []float64, c float64) float64 {
	h := 1.0
	for i := range nu {
		h *= (nu[i]*rho[i] + c) / (nu[i] + c)
	}
	return h
}

// U computes the analytic MSRE approximation
// u = h1 (h2 p^{-2} - 2 p^{-1}) + 1 (Appendix C).
func U(nu, rho []float64, p float64) float64 {
	h1 := Hc(nu, rho, 1)
	h2 := Hc(nu, rho, 2)
	return h1*(h2/(p*p)-2/p) + 1
}

// OptimalM implements Theorem 1: the first m at which g_m starts
// increasing, i.e. min{m >= 1 : g_m(N,p,c) < g_{m+1}(N,p,c)}.
func OptimalM(N int, p, c float64) int {
	if N < 1 {
		return 1
	}
	for m := 1; m < N; m++ {
		if G(float64(N), m, p, c) < G(float64(N), m+1, p, c) {
			return m
		}
	}
	return N
}

// Params is a complete parameterization of Algorithm 3.
type Params struct {
	// M is the number of bootstrapping steps.
	M int
	// NPerStep is n_i = N/M (rounded down, at least 2).
	NPerStep int
	// PPerStep is p_i = p^{1/M}.
	PPerStep float64
	// MSRE is the analytic mean-squared relative error u(nu*, rho*, M).
	MSRE float64
}

// Choose selects M, n_i, and p_i for a total budget of N samples and target
// tail probability p, per Appendix C: compute m*_1 and m*_2 via Theorem 1,
// pick the one minimizing u, and use equal splits.
func Choose(N int, p float64) (Params, error) {
	if N < 2 {
		return Params{}, fmt.Errorf("tail: need N >= 2 total samples, got %d", N)
	}
	if p <= 0 || p >= 1 {
		return Params{}, fmt.Errorf("tail: tail probability p must lie in (0,1), got %g", p)
	}
	best := Params{}
	bestU := math.Inf(1)
	for _, c := range []float64{1, 2} {
		m := OptimalM(N, p, c)
		nu := make([]float64, m)
		rho := make([]float64, m)
		for i := range nu {
			nu[i] = float64(N) / float64(m)
			rho[i] = math.Pow(p, 1/float64(m))
		}
		u := U(nu, rho, p)
		if u < bestU {
			bestU = u
			n := N / m
			if n < 2 {
				n = 2
			}
			best = Params{M: m, NPerStep: n, PPerStep: math.Pow(p, 1/float64(m)), MSRE: u}
		}
	}
	return best, nil
}

// W computes w(N): the minimized MSRE achievable with budget N at tail
// probability p (Appendix C); lim_{N->inf} w(N) = 0.
func W(N int, p float64) float64 {
	m := OptimalM(N, p, 1)
	return G(float64(N), m, p, 1)*(G(float64(N), m, p, 2)/(p*p)-2/p) + 1
}

// ChooseN selects the smallest total budget N with w(N) <= target,
// searching up to maxN (0 selects 1<<22). It errors when no budget within
// the bound achieves the target.
func ChooseN(p, target float64, maxN int) (int, error) {
	if target <= 0 {
		return 0, fmt.Errorf("tail: MSRE target must be positive, got %g", target)
	}
	if maxN <= 0 {
		maxN = 1 << 22
	}
	// w(N) is decreasing for the (p, N) ranges of interest; geometric
	// scan followed by binary refinement.
	lo, hi := 2, 0
	for n := 2; n <= maxN; n *= 2 {
		if W(n, p) <= target {
			hi = n
			break
		}
		lo = n
	}
	if hi == 0 {
		return 0, fmt.Errorf("tail: no N <= %d achieves MSRE %g at p=%g (w(%d)=%g)", maxN, target, p, maxN, W(maxN, p))
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if W(mid, p) <= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi, nil
}

// SimulateMSRE estimates the true MSRE of Algorithm 3's quantile estimator
// by Monte Carlo over the uniform-reduction model of Appendix C: it tracks
// 1 - eta_m = prod Z_i with Z_i = 1 - U_{i-1,(r_i)} and returns the mean of
// ((Fbar - p)/p)^2. It is the ground-truth the analytic U formula is tested
// against (experiment E4).
func SimulateMSRE(N, m int, p float64, runs int, seed uint64) float64 {
	n := N / m
	ri := int(float64(n)*(1-math.Pow(p, 1/float64(m))) + 0.5)
	if ri < 1 {
		ri = 1
	}
	if ri > n {
		ri = n
	}
	rng := prng.NewSub(seed)
	total := 0.0
	us := make([]float64, n)
	for run := 0; run < runs; run++ {
		eta := 0.0
		for i := 0; i < m; i++ {
			for j := range us {
				us[j] = eta + (1-eta)*rng.Float64()
			}
			eta = stats.OrderStatistic(us, ri)
		}
		rel := ((1 - eta) - p) / p
		total += rel * rel
	}
	return total / float64(runs)
}
