package tail

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/gibbs"
)

// Options configures Sample beyond the statistical essentials.
type Options struct {
	// TotalSamples is the budget N across all bootstrapping steps; when 0
	// it is derived from MSRETarget (default target 0.05).
	TotalSamples int
	// MSRETarget selects N via ChooseN when TotalSamples is 0.
	MSRETarget float64
	// K is the number of Gibbs updating steps per bootstrapping step
	// (default 1, per the paper's experiments).
	K int
	// ForceM overrides the Theorem 1 choice of m when positive.
	ForceM int
	// MaxTriesPerUpdate bounds rejection sampling (see gibbs.Config).
	MaxTriesPerUpdate int
	// SpillDir receives priority-queue spill files.
	SpillDir string
	// Parallelism is the number of worker goroutines for batch version
	// recomputation (see gibbs.Config.Parallelism); <= 1 is sequential.
	Parallelism int
}

// Sample runs MCDB-R tail sampling: it estimates the (1-p)-quantile of the
// query-result distribution of the plan in ws and returns l samples from
// the tail beyond it, choosing Algorithm 3 parameters per Appendix C.
func Sample(ws *exec.Workspace, plan exec.Node, q gibbs.Query, p float64, l int, opts Options) (*gibbs.Result, error) {
	cfg, err := Configure(p, l, opts)
	if err != nil {
		return nil, err
	}
	if ws.Window < cfg.N {
		return nil, fmt.Errorf("tail: workspace window %d < per-step sample size %d; rebuild the workspace with a larger window", ws.Window, cfg.N)
	}
	return gibbs.Run(ws, plan, q, cfg)
}

// Configure converts user-level options into a gibbs.Config using the
// Appendix C parameter selection.
func Configure(p float64, l int, opts Options) (gibbs.Config, error) {
	if l < 1 {
		return gibbs.Config{}, fmt.Errorf("tail: need l >= 1 tail samples, got %d", l)
	}
	total := opts.TotalSamples
	if total == 0 {
		target := opts.MSRETarget
		if target == 0 {
			target = 0.05
		}
		n, err := ChooseN(p, target, 0)
		if err != nil {
			return gibbs.Config{}, err
		}
		total = n
	}
	params, err := Choose(total, p)
	if err != nil {
		return gibbs.Config{}, err
	}
	if opts.ForceM > 0 {
		params.M = opts.ForceM
		params.NPerStep = total / opts.ForceM
		if params.NPerStep < 2 {
			params.NPerStep = 2
		}
	}
	return gibbs.Config{
		N:                 params.NPerStep,
		M:                 params.M,
		P:                 p,
		L:                 l,
		K:                 opts.K,
		MaxTriesPerUpdate: opts.MaxTriesPerUpdate,
		SpillDir:          opts.SpillDir,
		Parallelism:       opts.Parallelism,
	}, nil
}
