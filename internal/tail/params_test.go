package tail

import (
	"math"
	"testing"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/gibbs"
	"repro/internal/prng"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/vg"
)

func TestGMatchesHcAtEqualSplit(t *testing.T) {
	N, p := 1000.0, 0.001
	for _, c := range []float64{1, 2} {
		for m := 1; m <= 10; m++ {
			nu := make([]float64, m)
			rho := make([]float64, m)
			for i := range nu {
				nu[i] = N / float64(m)
				rho[i] = math.Pow(p, 1/float64(m))
			}
			if g, h := G(N, m, p, c), Hc(nu, rho, c); math.Abs(g-h) > 1e-12*h {
				t.Fatalf("g_%d(c=%g) = %g, Hc = %g", m, c, g, h)
			}
		}
	}
}

func TestHcBounds(t *testing.T) {
	// p <= h_c <= 1 for feasible parameters (Appendix C).
	N, p := 500.0, 0.01
	for m := 1; m <= 20; m++ {
		for _, c := range []float64{1, 2} {
			g := G(N, m, p, c)
			if g < p-1e-12 || g > 1+1e-12 {
				t.Fatalf("g_%d = %g outside [p, 1]", m, g)
			}
		}
	}
}

func TestOptimalMMatchesBruteForce(t *testing.T) {
	cases := []struct {
		N int
		p float64
	}{
		{100, 0.01}, {500, 0.001}, {1000, 0.001}, {2000, 0.0001}, {50, 0.1},
	}
	for _, tc := range cases {
		for _, c := range []float64{1, 2} {
			got := OptimalM(tc.N, tc.p, c)
			// Brute force the global minimizer of g_m over 1..N (g is
			// unimodal, so the first-ascent rule and argmin agree).
			best, bestV := 1, math.Inf(1)
			limit := tc.N
			if limit > 200 {
				limit = 200
			}
			for m := 1; m <= limit; m++ {
				if v := G(float64(tc.N), m, tc.p, c); v < bestV {
					best, bestV = m, v
				}
			}
			if got != best {
				t.Errorf("OptimalM(%d, %g, %g) = %d, brute force %d", tc.N, tc.p, c, got, best)
			}
		}
	}
}

func TestPaperWorkedExample(t *testing.T) {
	// §3.3: "for typical values of, say, p = 0.001 and m = 4 ... at each
	// step we merely need to estimate a 0.82-quantile."
	perStep := 1 - math.Pow(0.001, 0.25)
	if math.Abs(perStep-0.822) > 0.001 {
		t.Fatalf("per-step quantile = %g, paper says ≈0.82", perStep)
	}
}

func TestChooseSelectsBestC(t *testing.T) {
	params, err := Choose(500, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if params.M < 2 || params.M > 20 {
		t.Fatalf("implausible m* = %d", params.M)
	}
	if params.NPerStep != 500/params.M {
		t.Fatalf("NPerStep = %d", params.NPerStep)
	}
	if math.Abs(params.PPerStep-math.Pow(0.001, 1/float64(params.M))) > 1e-12 {
		t.Fatalf("PPerStep = %g", params.PPerStep)
	}
	if params.MSRE <= 0 {
		t.Fatalf("MSRE = %g", params.MSRE)
	}
	// Paper benchmark (App. D) uses m=5, p^{1/m}=0.25 for p ≈ 0.001 and
	// N=500; Theorem 1 should land in that neighbourhood.
	if params.M < 3 || params.M > 8 {
		t.Fatalf("m* = %d far from the paper's m=5", params.M)
	}
}

func TestChooseValidation(t *testing.T) {
	if _, err := Choose(1, 0.01); err == nil {
		t.Fatal("N=1 must error")
	}
	if _, err := Choose(100, 0); err == nil {
		t.Fatal("p=0 must error")
	}
	if _, err := Choose(100, 1); err == nil {
		t.Fatal("p=1 must error")
	}
}

func TestWDecreasingAndChooseN(t *testing.T) {
	p := 0.001
	prev := math.Inf(1)
	for _, n := range []int{50, 100, 200, 400, 800, 1600, 3200} {
		w := W(n, p)
		if w > prev+1e-9 {
			t.Fatalf("w(%d) = %g increased from %g", n, w, prev)
		}
		prev = w
	}
	n1, err := ChooseN(p, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := ChooseN(p, 0.01, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n2 <= n1 {
		t.Fatalf("tighter target needs more samples: %d vs %d", n2, n1)
	}
	if W(n1, p) > 0.05 || (n1 > 2 && W(n1-1, p) <= 0.05) {
		t.Fatalf("ChooseN(%g, 0.05) = %d not minimal (w=%g, w(n-1)=%g)", p, n1, W(n1, p), W(n1-1, p))
	}
	if _, err := ChooseN(p, -1, 0); err == nil {
		t.Fatal("negative target must error")
	}
	if _, err := ChooseN(1e-9, 1e-9, 64); err == nil {
		t.Fatal("unreachable target must error")
	}
}

func TestSimulatedMSREMatchesAnalytic(t *testing.T) {
	// E4 core claim: the analytic u formula predicts the simulated MSRE of
	// the Beta order-statistic model.
	cases := []struct {
		N int
		p float64
	}{
		{200, 0.01}, {500, 0.001},
	}
	for _, tc := range cases {
		params, err := Choose(tc.N, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		sim := SimulateMSRE(tc.N, params.M, tc.p, 4000, 99)
		if params.MSRE <= 0 {
			t.Fatalf("analytic MSRE %g", params.MSRE)
		}
		rel := math.Abs(sim-params.MSRE) / params.MSRE
		if rel > 0.35 {
			t.Errorf("N=%d p=%g: simulated MSRE %g vs analytic %g (rel %g)",
				tc.N, tc.p, sim, params.MSRE, rel)
		}
	}
}

func TestConfigure(t *testing.T) {
	cfg, err := Configure(0.001, 100, Options{TotalSamples: 500})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.P != 0.001 || cfg.L != 100 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.N != 500/cfg.M {
		t.Fatalf("N = %d with M = %d", cfg.N, cfg.M)
	}
	// ForceM override (the paper benchmark forces m=5).
	cfg, err = Configure(0.001, 100, Options{TotalSamples: 500, ForceM: 5})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.M != 5 || cfg.N != 100 {
		t.Fatalf("forced cfg = %+v", cfg)
	}
	// Budget from MSRE target.
	cfg, err = Configure(0.01, 10, Options{MSRETarget: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.N*cfg.M < 50 {
		t.Fatalf("derived budget too small: %+v", cfg)
	}
	if _, err := Configure(0.01, 0, Options{}); err == nil {
		t.Fatal("l=0 must error")
	}
}

func TestSampleEndToEnd(t *testing.T) {
	// Drive the full stack through the tail driver and check against the
	// analytic quantile of a sum of normals.
	cat := storage.NewCatalog()
	means := storage.NewTable("means", types.NewSchema(
		types.Column{Name: "cid", Kind: types.KindInt},
		types.Column{Name: "m", Kind: types.KindFloat},
	))
	mu := 0.0
	for i := 0; i < 10; i++ {
		m := float64(i + 1)
		mu += m
		means.MustAppend(types.Row{types.NewInt(int64(i)), types.NewFloat(m)})
	}
	cat.Put(means)
	normal, _ := vg.NewRegistry().Lookup("Normal")
	ws := exec.NewWorkspace(cat, prng.NewStream(404), 4096)
	scan, err := exec.NewScan(cat, "means", "means")
	if err != nil {
		t.Fatal(err)
	}
	seed, err := exec.NewSeed(scan, normal, []expr.Expr{expr.C("m"), expr.F(1)}, []string{"val"})
	if err != nil {
		t.Fatal(err)
	}
	plan := &exec.Instantiate{Child: seed}
	res, err := Sample(ws, plan, gibbs.Query{Agg: exec.AggSpec{Kind: exec.AggSum, Expr: expr.C("val")}},
		0.01, 50, Options{TotalSamples: 400})
	if err != nil {
		t.Fatal(err)
	}
	want := stats.NormalQuantile(0.99, mu, math.Sqrt(10))
	if math.Abs(res.Quantile-want) > 2.5 {
		t.Fatalf("quantile = %g, want ≈ %g", res.Quantile, want)
	}
	if len(res.TailSamples) != 50 {
		t.Fatalf("samples = %d", len(res.TailSamples))
	}
}

func TestSampleWindowValidation(t *testing.T) {
	cat := storage.NewCatalog()
	tbl := storage.NewTable("t", types.NewSchema(types.Column{Name: "m", Kind: types.KindFloat}))
	tbl.MustAppend(types.Row{types.NewFloat(1)})
	cat.Put(tbl)
	normal, _ := vg.NewRegistry().Lookup("Normal")
	ws := exec.NewWorkspace(cat, prng.NewStream(1), 4) // tiny window
	scan, _ := exec.NewScan(cat, "t", "t")
	seed, _ := exec.NewSeed(scan, normal, []expr.Expr{expr.C("m"), expr.F(1)}, []string{"v"})
	plan := &exec.Instantiate{Child: seed}
	_, err := Sample(ws, plan, gibbs.Query{Agg: exec.AggSpec{Kind: exec.AggSum, Expr: expr.C("v")}},
		0.01, 10, Options{TotalSamples: 400})
	if err == nil {
		t.Fatal("window smaller than per-step N must be rejected")
	}
}
